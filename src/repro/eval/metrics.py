"""Metric implementations: EM, numeracy-focused F1, denotation accuracy,
label accuracy, and 3-way micro F1.

The numeracy-focused F1 follows Li et al. (DROP-style): token-level F1
with numbers compared numerically rather than lexically, averaged over
samples; exact match compares normalized answer *sets* so multi-span
answers are order-insensitive.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Iterable, Sequence

from repro.sampling.labeler import ClaimLabel
from repro.tables.values import coerce_number, format_number

_ARTICLES_RE = re.compile(r"\b(a|an|the)\b")
_PUNCT_RE = re.compile(r"[^\w\s.%-]")


def normalize_answer(text: str) -> str:
    """Lowercase, strip punctuation/articles, canonicalize numbers."""
    lowered = str(text).lower().strip()
    number = coerce_number(lowered)
    if number is not None:
        return format_number(round(number, 4))
    lowered = _PUNCT_RE.sub(" ", lowered)
    lowered = _ARTICLES_RE.sub(" ", lowered)
    return " ".join(lowered.split())


def _normalize_set(answers: Iterable[str]) -> tuple[str, ...]:
    return tuple(sorted(normalize_answer(a) for a in answers))


def exact_match(predicted: Sequence[str], gold: Sequence[str]) -> float:
    """1.0 iff the normalized answer sets coincide."""
    return float(_normalize_set(predicted) == _normalize_set(gold))


def numeracy_f1(predicted: Sequence[str], gold: Sequence[str]) -> float:
    """Numeracy-focused token F1 between answer strings.

    Numeric answers must match numerically (rounded) to earn credit;
    textual answers earn partial credit via token overlap.
    """
    pred_tokens = _answer_tokens(predicted)
    gold_tokens = _answer_tokens(gold)
    if not pred_tokens and not gold_tokens:
        return 1.0
    if not pred_tokens or not gold_tokens:
        return 0.0
    # If gold is purely numeric, demand numeric equality (DROP-style).
    gold_numbers = [coerce_number(g) for g in gold]
    if all(number is not None for number in gold_numbers) and gold_numbers:
        return exact_match(predicted, gold)
    common = Counter(pred_tokens) & Counter(gold_tokens)
    overlap = sum(common.values())
    if overlap == 0:
        return 0.0
    precision = overlap / len(pred_tokens)
    recall = overlap / len(gold_tokens)
    return 2 * precision * recall / (precision + recall)


def _answer_tokens(answers: Sequence[str]) -> list[str]:
    tokens: list[str] = []
    for answer in answers:
        tokens.extend(normalize_answer(answer).split())
    return tokens


def qa_scores(
    predictions: Sequence[Sequence[str]], golds: Sequence[Sequence[str]]
) -> tuple[float, float]:
    """(EM, F1) averaged over a dataset, both in [0, 100]."""
    if len(predictions) != len(golds):
        raise ValueError("predictions and golds must align")
    if not golds:
        return 0.0, 0.0
    em = sum(exact_match(p, g) for p, g in zip(predictions, golds))
    f1 = sum(numeracy_f1(p, g) for p, g in zip(predictions, golds))
    return 100.0 * em / len(golds), 100.0 * f1 / len(golds)


def denotation_accuracy(
    predictions: Sequence[Sequence[str]], golds: Sequence[Sequence[str]]
) -> float:
    """WikiSQL metric: fraction of exact denotation matches, in [0, 100]."""
    if len(predictions) != len(golds):
        raise ValueError("predictions and golds must align")
    if not golds:
        return 0.0
    hits = sum(exact_match(p, g) for p, g in zip(predictions, golds))
    return 100.0 * hits / len(golds)


def label_accuracy(
    predictions: Sequence[ClaimLabel], golds: Sequence[ClaimLabel]
) -> float:
    """Fraction of correct labels, in [0, 100]."""
    if len(predictions) != len(golds):
        raise ValueError("predictions and golds must align")
    if not golds:
        return 0.0
    hits = sum(1 for p, g in zip(predictions, golds) if p == g)
    return 100.0 * hits / len(golds)


def micro_f1(
    predictions: Sequence[ClaimLabel],
    golds: Sequence[ClaimLabel],
    labels: Sequence[ClaimLabel] | None = None,
) -> float:
    """Multi-class micro-averaged F1, in [0, 100].

    With every instance assigned exactly one of the candidate labels,
    micro F1 equals accuracy; stated in SEM-TAB-FACTS' terms for parity
    with the paper's Table V.
    """
    if len(predictions) != len(golds):
        raise ValueError("predictions and golds must align")
    if not golds:
        return 0.0
    considered = set(labels) if labels is not None else set(golds) | set(predictions)
    tp = fp = fn = 0
    for predicted, gold in zip(predictions, golds):
        if predicted in considered and predicted == gold:
            tp += 1
        else:
            if predicted in considered:
                fp += 1
            if gold in considered:
                fn += 1
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    if precision + recall == 0:
        return 0.0
    return 100.0 * 2 * precision * recall / (precision + recall)
