"""Error analysis: per-category and per-evidence score breakdowns.

These are the diagnostics behind the paper's discussion sections (which
reasoning types a model handles, where synthetic data falls short); the
development of this reproduction used them heavily, so they ship as a
supported API.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.eval.metrics import exact_match, label_accuracy, numeracy_f1
from repro.pipelines.samples import ReasoningSample, TaskType


@dataclass(frozen=True)
class GroupScore:
    """Score of one sample group."""

    group: str
    n: int
    score: float  # accuracy (verification) or F1 (QA), in [0, 100]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.group}: {self.score:.1f} (n={self.n})"


@dataclass(frozen=True)
class Breakdown:
    """Per-group scores plus the overall number."""

    overall: float
    groups: tuple[GroupScore, ...] = field(default_factory=tuple)

    def group(self, name: str) -> GroupScore:
        for entry in self.groups:
            if entry.group == name:
                return entry
        raise KeyError(f"no group named {name!r}")

    def worst(self) -> GroupScore | None:
        return min(self.groups, key=lambda g: g.score, default=None)

    def best(self) -> GroupScore | None:
        return max(self.groups, key=lambda g: g.score, default=None)


def _group_key(sample: ReasoningSample, by: str) -> str:
    if by == "category":
        return str(
            sample.provenance.get("category")
            or sample.provenance.get("kind")
            or "unknown"
        )
    if by == "evidence":
        return sample.evidence_type.value
    if by == "topic":
        return str(sample.context.meta.get("topic", "unknown"))
    raise ValueError(f"unknown grouping {by!r}")


def verifier_breakdown(
    model,
    samples: list[ReasoningSample],
    by: str = "category",
) -> Breakdown:
    """Label-accuracy breakdown of a verification model."""
    usable = [s for s in samples if s.label is not None]
    if not usable:
        return Breakdown(overall=0.0)
    predictions = model.predict(usable)
    per_group: dict[str, list[tuple]] = defaultdict(list)
    for sample, predicted in zip(usable, predictions):
        per_group[_group_key(sample, by)].append((predicted, sample.label))
    groups = tuple(
        GroupScore(
            group=name,
            n=len(pairs),
            score=label_accuracy([p for p, _ in pairs], [g for _, g in pairs]),
        )
        for name, pairs in sorted(per_group.items())
    )
    overall = label_accuracy(predictions, [s.label for s in usable])
    return Breakdown(overall=overall, groups=groups)


def qa_breakdown(
    model,
    samples: list[ReasoningSample],
    by: str = "category",
    metric: str = "f1",
) -> Breakdown:
    """EM/F1 breakdown of a QA model."""
    if not samples:
        return Breakdown(overall=0.0)
    scorer = numeracy_f1 if metric == "f1" else exact_match
    per_group: dict[str, list[float]] = defaultdict(list)
    scores: list[float] = []
    for sample in samples:
        predicted = model.predict(sample)
        value = scorer(list(predicted), list(sample.answer))
        scores.append(value)
        per_group[_group_key(sample, by)].append(value)
    groups = tuple(
        GroupScore(
            group=name,
            n=len(values),
            score=100.0 * sum(values) / len(values),
        )
        for name, values in sorted(per_group.items())
    )
    overall = 100.0 * sum(scores) / len(scores)
    return Breakdown(overall=overall, groups=groups)
