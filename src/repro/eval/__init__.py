"""Evaluation metrics for all four benchmarks."""

from repro.eval.metrics import (
    normalize_answer,
    exact_match,
    numeracy_f1,
    denotation_accuracy,
    label_accuracy,
    micro_f1,
    qa_scores,
)
from repro.eval.feverous_score import feverous_score, SimulatedRetriever

__all__ = [
    "normalize_answer",
    "exact_match",
    "numeracy_f1",
    "denotation_accuracy",
    "label_accuracy",
    "micro_f1",
    "qa_scores",
    "feverous_score",
    "SimulatedRetriever",
]
