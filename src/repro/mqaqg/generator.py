"""The MQA-QG data generator: single-fact questions and claims."""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.features import tokenize
from repro.operators.table_to_text import TableToText
from repro.pipelines.samples import EvidenceType, ReasoningSample, TaskType
from repro.rng import choice, make_rng
from repro.sampling.labeler import ClaimLabel
from repro.tables.context import TableContext
from repro.tables.values import coerce_number, format_number

_QUESTION_FORMS = [
    "what is the {column} of {name} ?",
    "what {column} does {name} have ?",
    "tell me the {column} for {name}",
]

_CLAIM_FORMS = [
    "the {column} of {name} is {value}",
    "{name} has a {column} of {value}",
]


@dataclass(frozen=True)
class MQAQGConfig:
    """Generation shape for the baseline."""

    task: TaskType = TaskType.QUESTION_ANSWERING
    samples_per_context: int = 4
    seed: int = 0


class MQAQG:
    """Shallow unsupervised generator: bridge entity + DescribeEnt."""

    def __init__(self, config: MQAQGConfig | None = None):
        self.config = config or MQAQGConfig()
        self._rng = make_rng(self.config.seed)
        self._describe = TableToText(min_described_cells=2)

    def generate(self, contexts: list[TableContext]) -> list[ReasoningSample]:
        out: list[ReasoningSample] = []
        for context in contexts:
            out.extend(self._for_context(context))
        return out

    def _for_context(self, context: TableContext) -> list[ReasoningSample]:
        table = context.table
        if table.n_rows == 0 or table.n_columns < 2:
            return []
        out: list[ReasoningSample] = []
        name_column = table.row_name_column or table.column_names[0]
        bridge_rows = self._bridge_rows(context)
        for serial in range(self.config.samples_per_context):
            if bridge_rows and self._rng.random() < 0.5:
                row_index = choice(self._rng, bridge_rows)
                evidence_type = EvidenceType.TABLE_TEXT
            else:
                row_index = self._rng.randrange(table.n_rows)
                evidence_type = EvidenceType.TABLE
            columns = [c for c in table.column_names if c != name_column]
            if not columns:
                continue
            column = choice(self._rng, columns)
            cell = table.cell(row_index, column)
            if cell.is_null:
                continue
            name = table.row_name(row_index)
            uid = f"{context.uid}-mqaqg-{serial}"
            if self.config.task is TaskType.QUESTION_ANSWERING:
                sentence = choice(self._rng, _QUESTION_FORMS).format(
                    column=column, name=name
                )
                out.append(
                    ReasoningSample(
                        uid=uid,
                        task=self.config.task,
                        context=context,
                        sentence=sentence,
                        answer=(cell.raw,),
                        evidence_type=evidence_type,
                        evidence_cells=frozenset({(row_index, column)}),
                        provenance={"pipeline": "mqaqg", "category": "lookup"},
                    )
                )
            else:
                value, label = self._maybe_corrupt(table, row_index, column)
                sentence = choice(self._rng, _CLAIM_FORMS).format(
                    column=column, name=name, value=value
                )
                out.append(
                    ReasoningSample(
                        uid=uid,
                        task=self.config.task,
                        context=context,
                        sentence=sentence,
                        label=label,
                        evidence_type=evidence_type,
                        evidence_cells=frozenset({(row_index, column)}),
                        provenance={"pipeline": "mqaqg", "category": "lookup"},
                    )
                )
        return out

    def _bridge_rows(self, context: TableContext) -> list[int]:
        """Rows whose name also appears in the text (bridge entities)."""
        if not context.has_text:
            return []
        text_tokens = set(tokenize(context.text))
        bridges: list[int] = []
        for row_index in range(context.table.n_rows):
            name_tokens = set(tokenize(context.table.row_name(row_index)))
            if name_tokens and name_tokens <= text_tokens:
                bridges.append(row_index)
        return bridges

    def _maybe_corrupt(
        self, table, row_index: int, column: str
    ) -> tuple[str, ClaimLabel]:
        cell = table.cell(row_index, column)
        if self._rng.random() < 0.5:
            return cell.raw, ClaimLabel.SUPPORTED
        number = coerce_number(cell.raw)
        if number is not None:
            delta = max(1.0, abs(number) * (0.2 + 0.5 * self._rng.random()))
            sign = 1 if self._rng.random() < 0.5 else -1
            return format_number(number + sign * delta), ClaimLabel.REFUTED
        others = [
            value.raw
            for value in table.distinct_values(column)
            if value.raw != cell.raw
        ]
        if others:
            return choice(self._rng, others), ClaimLabel.REFUTED
        return cell.raw, ClaimLabel.SUPPORTED
