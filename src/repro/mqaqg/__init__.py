"""MQA-QG baseline (Pan et al., 2020) — shallow unsupervised generation.

MQA-QG finds a bridge entity linking the table and the text, verbalizes
the bridge row with ``DescribeEnt``, and composes simple questions or
claims from single facts.  Its defining limitation — the paper's whole
point of comparison — is that it "cannot integrate the information from
multiple rows using complex underlying logic": every generated sample is
a single-cell lookup.
"""

from repro.mqaqg.generator import MQAQG, MQAQGConfig

__all__ = ["MQAQG", "MQAQGConfig"]
