"""JSONL persistence for contexts and reasoning samples.

The on-disk interchange format: one JSON object per line, written by
:func:`write_jsonl` and friends.  Everything round-trips through the
``to_json``/``from_json`` pairs on the data classes, so synthetic
corpora can be generated once and shared between experiments or
exported for external training stacks.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import DatasetError
from repro.pipelines.samples import ReasoningSample
from repro.tables.context import TableContext


def write_jsonl(path: str | Path, records: Iterable[dict]) -> int:
    """Write dict records as JSONL; returns the number written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, ensure_ascii=False))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str | Path) -> Iterator[dict]:
    """Yield dict records from a JSONL file."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no such file: {path}")
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                yield json.loads(stripped)
            except json.JSONDecodeError as error:
                raise DatasetError(
                    f"{path}:{line_number}: invalid JSON ({error})"
                ) from error


def save_samples(path: str | Path, samples: Iterable[ReasoningSample]) -> int:
    """Persist reasoning samples (synthetic or gold) as JSONL."""
    return write_jsonl(path, (sample.to_json() for sample in samples))


def load_samples(path: str | Path) -> list[ReasoningSample]:
    """Load reasoning samples written by :func:`save_samples`."""
    return [ReasoningSample.from_json(record) for record in read_jsonl(path)]


def save_contexts(path: str | Path, contexts: Iterable[TableContext]) -> int:
    """Persist unlabeled table-text contexts as JSONL."""
    return write_jsonl(path, (context.to_json() for context in contexts))


def load_contexts(path: str | Path) -> list[TableContext]:
    """Load contexts written by :func:`save_contexts`."""
    return [TableContext.from_json(record) for record in read_jsonl(path)]
