"""JSONL persistence for contexts and reasoning samples.

The on-disk interchange format: one JSON object per line, written by
:func:`write_jsonl` and friends.  Everything round-trips through the
``to_json``/``from_json`` pairs on the data classes, so synthetic
corpora can be generated once and shared between experiments or
exported for external training stacks.

Writes are **atomic** (temp file + fsync + ``os.replace`` via
:mod:`repro.fsio`): a run killed mid-write never leaves a truncated
JSONL file where a good one — or nothing — used to be.  Reads validate
line-by-line and raise :class:`~repro.errors.FileFormatError` with the
offending line number, so a corrupt corpus is repairable instead of a
mystery.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import FileFormatError
from repro.fsio import atomic_writer
from repro.pipelines.samples import ReasoningSample
from repro.tables.context import TableContext


def write_jsonl(path: str | Path, records: Iterable[dict]) -> int:
    """Atomically write dict records as JSONL; returns the number written.

    The destination appears all-or-nothing: if serialization or the
    record iterator fails midway, any pre-existing file at ``path`` is
    left untouched.
    """
    path = Path(path)
    count = 0
    with atomic_writer(path) as handle:
        for record in records:
            handle.write(json.dumps(record, ensure_ascii=False))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str | Path) -> Iterator[dict]:
    """Yield dict records from a JSONL file.

    Raises :class:`FileFormatError` (a :class:`DatasetError`) naming the
    file and line for a missing file, invalid JSON, or a non-object
    line.
    """
    path = Path(path)
    if not path.exists():
        raise FileFormatError("no such file", path=str(path))
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError as error:
                raise FileFormatError(
                    f"invalid JSON ({error})",
                    path=str(path),
                    line_number=line_number,
                ) from error
            if not isinstance(record, dict):
                raise FileFormatError(
                    f"expected a JSON object, got {type(record).__name__}",
                    path=str(path),
                    line_number=line_number,
                )
            yield record


def save_samples(path: str | Path, samples: Iterable[ReasoningSample]) -> int:
    """Persist reasoning samples (synthetic or gold) as JSONL."""
    from repro import profiling

    with profiling.stage("serialize"):
        return write_jsonl(path, (sample.to_json() for sample in samples))


def load_samples(path: str | Path) -> list[ReasoningSample]:
    """Load reasoning samples written by :func:`save_samples`."""
    return [ReasoningSample.from_json(record) for record in read_jsonl(path)]


def save_contexts(path: str | Path, contexts: Iterable[TableContext]) -> int:
    """Persist unlabeled table-text contexts as JSONL."""
    return write_jsonl(path, (context.to_json() for context in contexts))


def load_contexts(path: str | Path) -> list[TableContext]:
    """Load contexts written by :func:`save_contexts`."""
    return [TableContext.from_json(record) for record in read_jsonl(path)]
