"""JSONL persistence for contexts and reasoning samples.

The on-disk interchange format: one JSON object per line, written by
:func:`write_jsonl` and friends.  Everything round-trips through the
``to_json``/``from_json`` pairs on the data classes, so synthetic
corpora can be generated once and shared between experiments or
exported for external training stacks.

Writes are **atomic** (temp file + fsync + ``os.replace`` via
:mod:`repro.fsio`) and **self-verifying**: :func:`save_samples` and
:func:`save_contexts` write a sidecar integrity manifest (schema
version, record count, SHA-256, generator fingerprint — see
:mod:`repro.validate.manifest`) that loads check before deserializing,
so a single flipped or missing byte raises a typed
:class:`~repro.errors.IntegrityError` at load time.

Reads validate line-by-line.  The default (``on_error="raise"``) raises
:class:`~repro.errors.FileFormatError` naming the file and line, so a
corrupt corpus is repairable instead of a mystery.  The lenient modes
degrade gracefully instead of dying on the first casualty:

``on_error="skip"``
    yield/return only the intact records.
``on_error="collect"``
    additionally emit one structured
    :class:`~repro.validate.rejects.RejectRecord` (path, line, reason,
    content digest) per casualty — the load-time mirror of the
    generation runtime's quarantine records.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.errors import FileFormatError, IntegrityError, ReproError
from repro.fsio import atomic_writer
from repro.pipelines.samples import ReasoningSample
from repro.tables.context import TableContext
from repro.validate.manifest import verify_manifest, write_manifest
from repro.validate.rejects import LoadResult, RejectRecord

#: how a load reacts to a bad record: die, drop, or drop-and-account.
ON_ERROR_MODES = ("raise", "skip", "collect")

#: how a load treats the sidecar manifest: check it when present,
#: insist it exists, or ignore it entirely.
INTEGRITY_MODES = ("verify", "require", "skip")


def _check_on_error(on_error: str) -> None:
    if on_error not in ON_ERROR_MODES:
        raise ValueError(
            f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}"
        )


def write_jsonl(path: str | Path, records: Iterable[dict]) -> int:
    """Atomically write dict records as JSONL; returns the number written.

    The destination appears all-or-nothing: if serialization or the
    record iterator fails midway, any pre-existing file at ``path`` is
    left untouched.
    """
    path = Path(path)
    count = 0
    with atomic_writer(path) as handle:
        for record in records:
            handle.write(json.dumps(record, ensure_ascii=False))
            handle.write("\n")
            count += 1
    return count


def iter_jsonl(
    path: str | Path,
    *,
    on_error: str = "raise",
    rejects: list[RejectRecord] | None = None,
) -> Iterator[tuple[int, dict]]:
    """Yield ``(line_number, record)`` pairs from a JSONL file.

    The numbered variant of :func:`read_jsonl`, for callers that need to
    attribute downstream failures (deserialization, checkpoint replay)
    to a file location.  In lenient modes, bad lines are dropped; with
    ``on_error="collect"`` each one appends a
    :class:`~repro.validate.rejects.RejectRecord` to ``rejects``.

    A missing file or a directory always raises
    :class:`FileFormatError` — there are no records to salvage.
    """
    _check_on_error(on_error)
    path = Path(path)
    if path.is_dir():
        raise FileFormatError("path is a directory, not a JSONL file",
                              path=str(path))
    if not path.exists():
        raise FileFormatError("no such file", path=str(path))
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            reason = detail = None
            cause: Exception | None = None
            record = None
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError as error:
                reason, detail, cause = "invalid_json", str(error), error
            if reason is None and not isinstance(record, dict):
                reason = "not_an_object"
                detail = f"expected a JSON object, got {type(record).__name__}"
            if reason is None:
                yield line_number, record
                continue
            if on_error == "raise":
                raise FileFormatError(
                    detail if reason == "not_an_object"
                    else f"invalid JSON ({detail})",
                    path=str(path),
                    line_number=line_number,
                ) from cause
            if on_error == "collect" and rejects is not None:
                rejects.append(
                    RejectRecord.for_line(
                        str(path), line_number, reason, stripped, detail
                    )
                )


def read_jsonl(
    path: str | Path,
    *,
    on_error: str = "raise",
    rejects: list[RejectRecord] | None = None,
) -> Iterator[dict]:
    """Yield dict records from a JSONL file.

    With the default ``on_error="raise"``, raises
    :class:`FileFormatError` (a :class:`~repro.errors.DatasetError`)
    naming the file and line for a missing file, a directory, invalid
    JSON, or a non-object line.  ``"skip"`` drops bad lines;
    ``"collect"`` drops them and appends structured reject records to
    the caller-provided ``rejects`` list.
    """
    for _, record in iter_jsonl(path, on_error=on_error, rejects=rejects):
        yield record


# -- typed corpora ----------------------------------------------------------

def _generator_stamp(generator: dict | None) -> dict:
    """The manifest's generator fingerprint, always naming the version."""
    from repro import __version__

    stamp = {"repro_version": __version__}
    if generator:
        stamp.update(generator)
    return stamp


def _load_typed(
    path: str | Path,
    from_json: Callable[[dict], object],
    record_kind: str,
    on_error: str,
    integrity: str,
):
    """Shared engine of :func:`load_samples`/:func:`load_contexts`."""
    _check_on_error(on_error)
    if integrity not in INTEGRITY_MODES:
        raise ValueError(
            f"integrity must be one of {INTEGRITY_MODES}, got {integrity!r}"
        )
    path = Path(path)
    rejects: list[RejectRecord] = []
    manifest = None
    if integrity != "skip":
        try:
            manifest = verify_manifest(path, required=integrity == "require")
        except IntegrityError as error:
            if on_error == "raise":
                raise
            rejects.append(
                RejectRecord(
                    path=str(path),
                    line_number=0,
                    reason="integrity",
                    detail=str(error),
                )
            )
    records: list = []
    for line_number, payload in iter_jsonl(
        path, on_error=on_error, rejects=rejects
    ):
        try:
            records.append(from_json(payload))
        except (KeyError, TypeError, ValueError, ReproError) as error:
            if on_error == "raise":
                raise FileFormatError(
                    f"cannot deserialize {record_kind} record ({error!r})",
                    path=str(path),
                    line_number=line_number,
                ) from error
            if on_error == "collect":
                rejects.append(
                    RejectRecord.for_line(
                        str(path),
                        line_number,
                        "deserialization",
                        json.dumps(payload, sort_keys=True,
                                   ensure_ascii=False),
                        f"{error!r}",
                    )
                )
    if (
        manifest is not None
        and on_error == "raise"
        and len(records) != manifest.records
    ):
        raise IntegrityError(
            f"record count mismatch: manifest says {manifest.records}, "
            f"file holds {len(records)}",
            path=str(path),
        )
    if on_error == "collect":
        return LoadResult(records=records, rejects=rejects)
    return records


def save_samples(
    path: str | Path,
    samples: Iterable[ReasoningSample],
    *,
    manifest: bool = True,
    generator: dict | None = None,
) -> int:
    """Persist reasoning samples (synthetic or gold) as JSONL.

    Writes the data atomically, then (unless ``manifest=False``) the
    sidecar integrity manifest; ``generator`` is stamped into it so a
    corpus can name the run that produced it.
    """
    from repro import profiling

    with profiling.stage("serialize"):
        count = write_jsonl(path, (sample.to_json() for sample in samples))
    if manifest:
        write_manifest(
            path,
            record_kind="samples",
            records=count,
            generator=_generator_stamp(generator),
        )
    return count


def load_samples(
    path: str | Path,
    *,
    on_error: str = "raise",
    integrity: str = "verify",
) -> list[ReasoningSample] | LoadResult:
    """Load reasoning samples written by :func:`save_samples`.

    The sidecar manifest (when present, or mandatorily with
    ``integrity="require"``) is verified first; any mismatch raises
    :class:`~repro.errors.IntegrityError` in strict mode or becomes a
    file-level reject in the lenient modes, which then salvage every
    intact record.  ``on_error="collect"`` returns a
    :class:`~repro.validate.rejects.LoadResult` carrying both the
    samples and the structured rejects; the other modes return a plain
    list.
    """
    return _load_typed(
        path, ReasoningSample.from_json, "sample", on_error, integrity
    )


def save_contexts(
    path: str | Path,
    contexts: Iterable[TableContext],
    *,
    manifest: bool = True,
    generator: dict | None = None,
) -> int:
    """Persist unlabeled table-text contexts as JSONL (with manifest)."""
    count = write_jsonl(path, (context.to_json() for context in contexts))
    if manifest:
        write_manifest(
            path,
            record_kind="contexts",
            records=count,
            generator=_generator_stamp(generator),
        )
    return count


def load_contexts(
    path: str | Path,
    *,
    on_error: str = "raise",
    integrity: str = "verify",
) -> list[TableContext] | LoadResult:
    """Load contexts written by :func:`save_contexts`.

    Same integrity and degradation semantics as :func:`load_samples`.
    """
    return _load_typed(
        path, TableContext.from_json, "context", on_error, integrity
    )
