"""Unit and integration tests for the generation pipelines and UCTR."""

import pytest

from repro.nlgen.model import NLGenerator
from repro.pipelines import (
    EvidenceType,
    ExpansionPipeline,
    ReasoningSample,
    SplittingPipeline,
    TableOnlyPipeline,
    TaskType,
    UCTR,
    UCTRConfig,
)
from repro.pipelines.base import PipelineTools, task_for_kind
from repro.programs.base import ProgramKind, parse_program
from repro.sampling.labeler import ClaimLabel


@pytest.fixture
def tools(rng):
    return PipelineTools(rng=rng, generators={})


class TestTaskRouting:
    def test_logic_makes_claims(self):
        assert task_for_kind(ProgramKind.LOGIC) is TaskType.FACT_VERIFICATION

    def test_sql_and_arith_make_questions(self):
        assert task_for_kind(ProgramKind.SQL) is TaskType.QUESTION_ANSWERING
        assert task_for_kind(ProgramKind.ARITH) is TaskType.QUESTION_ANSWERING


class TestTableOnlyPipeline:
    def test_generates_qa_samples(self, players_context, tools):
        pipeline = TableOnlyPipeline(tools, (ProgramKind.SQL,))
        samples = pipeline.generate(players_context, 6)
        assert samples
        for sample in samples:
            assert sample.task is TaskType.QUESTION_ANSWERING
            assert sample.answer
            assert sample.evidence_type is EvidenceType.TABLE
            assert not sample.context.has_text  # paragraphs stripped

    def test_generates_verification_samples(self, players_context, tools):
        pipeline = TableOnlyPipeline(tools, (ProgramKind.LOGIC,))
        samples = pipeline.generate(players_context, 6)
        assert samples
        for sample in samples:
            assert sample.task is TaskType.FACT_VERIFICATION
            assert sample.label in (ClaimLabel.SUPPORTED, ClaimLabel.REFUTED)

    def test_label_certification_end_to_end(self, players_context, tools):
        pipeline = TableOnlyPipeline(tools, (ProgramKind.LOGIC,))
        for sample in pipeline.generate(players_context, 10):
            program = parse_program(sample.provenance["program"], "logic")
            truth = program.execute(players_context.table).truth
            expected = sample.label is ClaimLabel.SUPPORTED
            assert truth is expected


class TestSplittingPipeline:
    def test_generates_joint_samples(self, players_context, tools):
        pipeline = SplittingPipeline(tools, (ProgramKind.SQL,))
        samples = pipeline.generate(players_context, 8)
        assert samples
        for sample in samples:
            # the split sentence is the only paragraph
            assert sample.context.has_text
            assert sample.context.paragraphs[0].source == "table_to_text"
            assert sample.context.table.n_rows == (
                players_context.table.n_rows - 1
            )
            assert sample.evidence_type in (
                EvidenceType.TABLE_TEXT,
                EvidenceType.TEXT,
            )

    def test_evidence_cells_remapped(self, players_context, tools):
        pipeline = SplittingPipeline(tools, (ProgramKind.SQL,))
        for sample in pipeline.generate(players_context, 8):
            for row, _ in sample.evidence_cells:
                assert 0 <= row < sample.context.table.n_rows


class TestExpansionPipeline:
    def test_generates_joint_samples(self, players_context, tools):
        pipeline = ExpansionPipeline(tools, (ProgramKind.SQL,))
        samples = pipeline.generate(players_context, 8)
        # expansion requires the text-derived row to matter, which is
        # stochastic; but the fixture guarantees an extractable record.
        for sample in samples:
            assert sample.evidence_type is EvidenceType.TABLE_TEXT
            # context keeps the ORIGINAL table and text
            assert sample.context.table.n_rows == players_context.table.n_rows
            assert sample.context.has_text

    def test_no_text_contexts_yield_nothing(self, players_context, tools):
        bare = players_context.with_paragraphs([])
        pipeline = ExpansionPipeline(tools, (ProgramKind.SQL,))
        assert pipeline.generate(bare, 5) == []


class TestUCTRFacade:
    def test_fit_then_generate(self, players_context, finance_context):
        framework = UCTR(
            UCTRConfig(program_kinds=("sql", "logic"), samples_per_context=6,
                       seed=3)
        )
        framework.fit([players_context, finance_context])
        assert set(framework.generators) == {ProgramKind.SQL, ProgramKind.LOGIC}
        for generator in framework.generators.values():
            assert isinstance(generator, NLGenerator)
        samples = framework.generate([players_context, finance_context])
        assert len(samples) >= 8
        uids = [sample.uid for sample in samples]
        assert len(uids) == len(set(uids))

    def test_generate_before_fit_raises(self, players_context):
        framework = UCTR(UCTRConfig())
        with pytest.raises(RuntimeError):
            framework.generate([players_context])

    def test_budget_cap(self, players_context):
        framework = UCTR(UCTRConfig(samples_per_context=10, seed=3))
        framework.fit([players_context])
        samples = framework.generate([players_context], budget=4)
        assert len(samples) <= 4

    def test_no_t2t_variant_is_table_only(self, players_context):
        framework = UCTR(
            UCTRConfig(
                program_kinds=("logic",),
                use_table_to_text=False,
                use_text_to_table=False,
                samples_per_context=8,
                seed=3,
            )
        )
        framework.fit([players_context])
        samples = framework.generate([players_context])
        assert samples
        assert all(
            sample.evidence_type is EvidenceType.TABLE for sample in samples
        )

    def test_determinism(self, players_context):
        def run():
            framework = UCTR(
                UCTRConfig(program_kinds=("sql",), samples_per_context=6,
                           seed=77)
            )
            framework.fit([players_context])
            return [
                (sample.sentence, tuple(sample.answer))
                for sample in framework.generate([players_context])
            ]

        assert run() == run()


class TestSampleSerialization:
    def test_round_trip(self, players_context, tools):
        pipeline = TableOnlyPipeline(tools, (ProgramKind.LOGIC,))
        for sample in pipeline.generate(players_context, 4):
            back = ReasoningSample.from_json(sample.to_json())
            assert back.uid == sample.uid
            assert back.sentence == sample.sentence
            assert back.label == sample.label
            assert back.evidence_cells == sample.evidence_cells

    def test_validation(self, players_context):
        with pytest.raises(ValueError):
            ReasoningSample(
                uid="x",
                task=TaskType.FACT_VERIFICATION,
                context=players_context,
                sentence="claim without label",
            )
        with pytest.raises(ValueError):
            ReasoningSample(
                uid="x",
                task=TaskType.QUESTION_ANSWERING,
                context=players_context,
                sentence="question without answer",
            )
