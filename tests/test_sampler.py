"""Unit tests for the program sampler and validity filters."""

import random

import pytest

from repro.errors import SamplingError
from repro.programs.base import ProgramKind
from repro.sampling import ProgramSampler, default_filters
from repro.sampling.filters import passes_all
from repro.sampling.sampler import RESULT_SENTINEL, sample_many
from repro.tables import Table
from repro.tables.values import ValueType
from repro.templates import (
    Placeholder,
    PlaceholderKind,
    ProgramTemplate,
    finqa_pool,
    logic2text_pool,
    squall_pool,
)


@pytest.fixture
def sampler(rng):
    return ProgramSampler(rng)


class TestBinding:
    def test_columns_match_declared_types(self, sampler, players_table):
        template = squall_pool().templates[2]  # order by c2(num) desc limit 1
        for _ in range(10):
            bindings = sampler.bind_placeholders(template, players_table)
            assert bindings["c2"] in ("points", "rebounds")

    def test_columns_are_distinct(self, sampler, players_table):
        template = next(
            t for t in squall_pool()
            if t.pattern == "select c1 from w where c2 = val1"
        )
        for _ in range(10):
            bindings = sampler.bind_placeholders(template, players_table)
            assert bindings["c1"] != bindings["c2"]

    def test_values_come_from_bound_column(self, sampler, players_table):
        template = next(
            t for t in squall_pool()
            if t.pattern == "select c1 from w where c2 = val1"
        )
        for _ in range(10):
            bindings = sampler.bind_placeholders(template, players_table)
            column_values = {
                value.raw
                for value in players_table.distinct_values(bindings["c2"])
            }
            assert bindings["val1"] in column_values

    def test_ordinals_bounded_by_rows(self, sampler, players_table):
        template = next(
            t for t in squall_pool() if "limit n1" in t.pattern
        )
        for _ in range(10):
            bindings = sampler.bind_placeholders(template, players_table)
            assert 1 <= int(bindings["n1"]) <= players_table.n_rows

    def test_missing_column_type_raises(self, sampler):
        all_text = Table.from_rows(
            ["a", "b"], [["x", "y"], ["p", "q"]]
        )
        template = ProgramTemplate(
            kind=ProgramKind.SQL,
            pattern="select sum ( c1 ) from w",
            placeholders=(
                Placeholder("c1", PlaceholderKind.COLUMN,
                            value_type=ValueType.NUMBER),
            ),
        )
        with pytest.raises(SamplingError):
            sampler.sample(template, all_text)


class TestSampling:
    def test_sql_sample_executes(self, sampler, players_table):
        for template in squall_pool():
            sampled = sampler.try_sample(template, players_table)
            if sampled is None:
                continue
            assert sampled.result is not None
            assert not sampled.result.is_empty

    def test_logic_result_slot_resolved(self, sampler, players_table):
        template = next(
            t for t in logic2text_pool()
            if t.meta.get("result_slot") == "val2"
        )
        sampled = sampler.sample(template, players_table)
        assert RESULT_SENTINEL not in sampled.program.source
        # the claim certifies True because the slot holds the real result
        assert sampled.result.truth is True

    def test_arith_sample_executes(self, sampler, finance_table):
        produced = 0
        for template in finqa_pool():
            sampled = sampler.try_sample(template, finance_table)
            if sampled is not None:
                produced += 1
                assert sampled.answer
        assert produced >= 10

    def test_sql_quoting_of_text_values(self, sampler, players_table):
        template = next(
            t for t in squall_pool()
            if t.pattern == "select c1 from w where c2 = val1"
        )
        sampled = sampler.sample(template, players_table)
        # a text value must appear quoted in the SQL source
        value = sampled.bindings["val1"]
        from repro.tables.values import coerce_number

        if coerce_number(value) is None:
            assert f"'{value}'" in sampled.program.source

    def test_sample_many_respects_budget(self, sampler, players_table, rng):
        got = sample_many(sampler, list(squall_pool()), players_table, 5, rng)
        assert len(got) <= 5

    def test_sample_many_empty_templates(self, sampler, players_table, rng):
        assert sample_many(sampler, [], players_table, 5, rng) == []


class TestFilters:
    def test_default_filters_accept_good_sample(self, sampler, players_table):
        template = next(
            t for t in squall_pool()
            if t.pattern == "select c1 from w where c2 = val1"
        )
        sampled = sampler.sample(template, players_table)
        assert passes_all(sampled, default_filters())

    def test_touches_table_filter(self, sampler, players_table):
        """count(*) over an empty filter has no highlighted cells."""
        from repro.programs.base import parse_program
        from repro.sampling.sampler import SampledProgram

        program = parse_program(
            "select count ( * ) from w where team = 'jazz'", "sql"
        )
        result = program.execute(players_table)
        sampled = SampledProgram(
            template=squall_pool().templates[0],
            program=program,
            bindings={},
            result=result,
            table=players_table,
        )
        filters = {f.name: f for f in default_filters()}
        assert not filters["touches_table"](sampled)

    def test_filter_names_unique(self):
        names = [f.name for f in default_filters()]
        assert len(names) == len(set(names))
