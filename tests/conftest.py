"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.tables import Paragraph, Table, TableContext


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture
def players_table() -> Table:
    """A small sports table with text and numeric columns."""
    return Table.from_rows(
        header=["player", "team", "points", "rebounds"],
        raw_rows=[
            ["john smith", "hawks", "31", "7"],
            ["mike jones", "bulls", "22", "11"],
            ["alan reed", "hawks", "17", "4"],
            ["bo chen", "heat", "28", "9"],
            ["raj patel", "bulls", "12", "6"],
        ],
        title="player statistics",
        row_name_column="player",
    )


@pytest.fixture
def finance_table() -> Table:
    """A line-item x year financial table."""
    return Table.from_rows(
        header=["item", "2019", "2018"],
        raw_rows=[
            ["revenue", "1200", "1000"],
            ["net income", "300", "250"],
            ["stockholders equity", "900", "1000"],
            ["cash", "450", "380"],
        ],
        title="consolidated financial data",
        row_name_column="item",
    )


@pytest.fixture
def players_context(players_table) -> TableContext:
    return TableContext(
        table=players_table,
        paragraphs=(
            Paragraph(
                text=(
                    "For dana cruz , the team is spurs and the points is 19 "
                    "and the rebounds is 8 . For john smith , the points is 31 ."
                ),
                source="context",
            ),
        ),
        uid="ctx-players",
        meta={
            "text_records": [
                {"player": "dana cruz", "team": "spurs", "points": "19",
                 "rebounds": "8"}
            ]
        },
    )


@pytest.fixture
def finance_context(finance_table) -> TableContext:
    return TableContext(
        table=finance_table,
        paragraphs=(
            Paragraph(
                text=(
                    "For deferred revenue , the 2019 is 420 and the 2018 is "
                    "380 . For revenue , the 2019 is 1200 ."
                ),
                source="context",
            ),
        ),
        uid="ctx-finance",
        meta={
            "text_records": [
                {"item": "deferred revenue", "2019": "420", "2018": "380"}
            ]
        },
    )
