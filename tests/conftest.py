"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.tables import Paragraph, Table, TableContext


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


def _players_table() -> Table:
    return Table.from_rows(
        header=["player", "team", "points", "rebounds"],
        raw_rows=[
            ["john smith", "hawks", "31", "7"],
            ["mike jones", "bulls", "22", "11"],
            ["alan reed", "hawks", "17", "4"],
            ["bo chen", "heat", "28", "9"],
            ["raj patel", "bulls", "12", "6"],
        ],
        title="player statistics",
        row_name_column="player",
    )


def _players_context() -> TableContext:
    return TableContext(
        table=_players_table(),
        paragraphs=(
            Paragraph(
                text=(
                    "For dana cruz , the team is spurs and the points is 19 "
                    "and the rebounds is 8 . For john smith , the points is 31 ."
                ),
                source="context",
            ),
        ),
        uid="ctx-players",
        meta={
            "text_records": [
                {"player": "dana cruz", "team": "spurs", "points": "19",
                 "rebounds": "8"}
            ]
        },
    )


@pytest.fixture
def players_table() -> Table:
    """A small sports table with text and numeric columns."""
    return _players_table()


@pytest.fixture
def finance_table() -> Table:
    """A line-item x year financial table."""
    return Table.from_rows(
        header=["item", "2019", "2018"],
        raw_rows=[
            ["revenue", "1200", "1000"],
            ["net income", "300", "250"],
            ["stockholders equity", "900", "1000"],
            ["cash", "450", "380"],
        ],
        title="consolidated financial data",
        row_name_column="item",
    )


@pytest.fixture
def players_context(players_table) -> TableContext:
    context = _players_context()
    return TableContext(
        table=players_table,
        paragraphs=context.paragraphs,
        uid=context.uid,
        meta=context.meta,
    )


# -- serving-stack helpers ---------------------------------------------------
# Tiny trained models are expensive enough (a few hundred ms each) that
# the serve/registry/pickle tests share session-scoped instances.


def qa_lookup_samples(context: TableContext):
    """Lookup QA samples over every (row, numeric column) of a context."""
    from repro.pipelines.samples import ReasoningSample, TaskType

    table = context.table
    samples = []
    for row in range(table.n_rows):
        name = table.row_name(row)
        for column in table.numeric_column_names():
            cell = table.cell(row, column)
            samples.append(ReasoningSample(
                uid=f"qa-{row}-{column}",
                task=TaskType.QUESTION_ANSWERING,
                context=context,
                sentence=f"what is the {column} of {name} ?",
                answer=(cell.raw,),
            ))
    return samples


def verification_samples(context: TableContext):
    """Supported/refuted claim pairs over every cell of a context."""
    from repro.pipelines.samples import ReasoningSample, TaskType
    from repro.sampling.labeler import ClaimLabel

    table = context.table
    samples = []
    for row in range(table.n_rows):
        name = table.row_name(row)
        for column in table.column_names:
            if column == table.row_name_column:
                continue
            cell = table.cell(row, column)
            for label, value in (
                (ClaimLabel.SUPPORTED, cell.raw),
                (ClaimLabel.REFUTED, "999999"),
            ):
                samples.append(ReasoningSample(
                    uid=f"v-{row}-{column}-{label.value}",
                    task=TaskType.FACT_VERIFICATION,
                    context=context,
                    sentence=f"{name} has a {column} of {value}",
                    label=label,
                ))
    return samples


@pytest.fixture(scope="session")
def serve_context() -> TableContext:
    """Session-scoped copy of the players context for serving tests."""
    return _players_context()


@pytest.fixture(scope="session")
def tiny_qa_model(serve_context):
    from repro.models.qa import QAConfig, TagOpQA

    model = TagOpQA(QAConfig(epochs=8, seed=0))
    model.fit(qa_lookup_samples(serve_context))
    return model


@pytest.fixture(scope="session")
def tiny_verifier(serve_context):
    from repro.models.verifier import FactVerifier, VerifierConfig

    model = FactVerifier(VerifierConfig(epochs=8, seed=0))
    model.fit(verification_samples(serve_context))
    return model


@pytest.fixture
def finance_context(finance_table) -> TableContext:
    return TableContext(
        table=finance_table,
        paragraphs=(
            Paragraph(
                text=(
                    "For deferred revenue , the 2019 is 420 and the 2018 is "
                    "380 . For revenue , the 2019 is 1200 ."
                ),
                source="context",
            ),
        ),
        uid="ctx-finance",
        meta={
            "text_records": [
                {"item": "deferred revenue", "2019": "420", "2018": "380"}
            ]
        },
    )
