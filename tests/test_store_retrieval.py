"""Retrieval-quality tests and the passage linearizer's regression pins."""

import pytest

from repro.errors import StoreError, TableError
from repro.store import (
    Retriever,
    TableStore,
    build_index,
    gold_questions,
    synth_corpus,
)
from repro.store.index import document_terms, number_term, query_terms
from repro.tables.serialize import linearize_table
from repro.tables.table import Table

pytestmark = pytest.mark.timeout(300)


@pytest.fixture(scope="module")
def small_corpus(tmp_path_factory):
    root = tmp_path_factory.mktemp("retrieval") / "store"
    store = TableStore.create(root, shard_size=64)
    store.add(synth_corpus(200, seed=11))
    build_index(root, workers=2)
    return root


class TestRetrieval:
    def test_recall_on_gold_questions(self, small_corpus):
        retriever = Retriever.open(small_corpus)
        gold = gold_questions(60, corpus_size=200, seed=11)
        at1 = at5 = 0
        for question in gold:
            hits = retriever.search(question.question, k=5)
            uids = [hit.uid for hit in hits]
            at1 += uids[:1] == [question.uid]
            at5 += question.uid in uids
        # a tiny corpus with shared noise vocabulary; the company-name
        # anchor should nail nearly every question
        assert at5 / len(gold) >= 0.9
        assert at1 / len(gold) >= 0.8

    def test_ranked_and_deterministic(self, small_corpus):
        retriever = Retriever.open(small_corpus)
        question = gold_questions(
            1, corpus_size=200, seed=11
        )[0].question
        hits = retriever.search(question, k=20)
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)
        # equal scores break ties by ordinal — rerun is identical
        again = retriever.search(question, k=20)
        assert [h.to_json() for h in hits] == [
            h.to_json() for h in again
        ]

    def test_k_validation_and_fetch(self, small_corpus):
        retriever = Retriever.open(small_corpus)
        with pytest.raises(StoreError):
            retriever.search("anything", k=0)
        hit = retriever.search(
            gold_questions(1, corpus_size=200, seed=11)[0].question
        )[0]
        context = retriever.fetch(hit.doc_id)
        assert context.uid == hit.uid
        passage = retriever.passage(hit.doc_id, max_rows=2)
        assert context.table.title in passage

    def test_no_overlap_is_empty(self, small_corpus):
        retriever = Retriever.open(small_corpus)
        assert retriever.search("zzzz qqqq wwww") == []

    def test_query_terms_fold_and_number(self):
        terms = query_terms("What is the REVENUE of 1,250.0 units ?")
        assert "revenue" in terms
        assert number_term(1250.0) in terms
        # deduped, original order kept
        assert len(terms) == len(set(terms))

    def test_document_terms_weight_fields(self, small_corpus):
        store = TableStore.open(small_corpus)
        context = store.get("t00000000")
        weights = document_terms(context)
        title_word = context.table.title.split()[0].lower()
        header = context.table.column_names[1]
        # caption/title outrank headers outrank cell values
        assert weights[title_word] > weights[header] >= 1.0


class TestPassageLinearizer:
    @pytest.fixture()
    def table(self):
        return Table.from_rows(
            ["player", "points", "team"],
            [["bo chen", "28", "hawks"], ["ana cruz", "31", "owls"]],
            title="season scoring",
            caption="points per game leaders",
            row_name_column="player",
        )

    def test_flat_default_is_pinned(self, table):
        # the default style is the featurizers' wire format: pinned
        # byte-for-byte so retrieval work can never drift it.
        assert linearize_table(table) == (
            "title : season scoring "
            "header : player | points | team "
            "row 1 : bo chen | 28 | hawks "
            "row 2 : ana cruz | 31 | owls"
        )
        assert linearize_table(table, max_rows=1) == (
            "title : season scoring "
            "header : player | points | team "
            "row 1 : bo chen | 28 | hawks"
        )
        assert linearize_table(table, style="flat") == linearize_table(
            table
        )

    def test_passage_style(self, table):
        assert linearize_table(table, style="passage") == (
            "season scoring . points per game leaders . "
            "player is bo chen ; points is 28 ; team is hawks . "
            "player is ana cruz ; points is 31 ; team is owls ."
        )
        assert linearize_table(table, max_rows=1, style="passage") == (
            "season scoring . points per game leaders . "
            "player is bo chen ; points is 28 ; team is hawks ."
        )

    def test_unknown_style_refused(self, table):
        with pytest.raises(TableError):
            linearize_table(table, style="prose")
