"""Tests for evaluation metrics and the FEVEROUS score."""

import pytest

from repro.eval import (
    SimulatedRetriever,
    denotation_accuracy,
    exact_match,
    feverous_score,
    label_accuracy,
    micro_f1,
    normalize_answer,
    numeracy_f1,
    qa_scores,
)
from repro.eval.report import em_f1, render_table
from repro.pipelines.samples import EvidenceType, ReasoningSample, TaskType
from repro.sampling.labeler import ClaimLabel

S, R, U = ClaimLabel.SUPPORTED, ClaimLabel.REFUTED, ClaimLabel.UNKNOWN


class TestNormalize:
    def test_numbers_canonicalized(self):
        assert normalize_answer("1,200.0") == normalize_answer("1200")
        assert normalize_answer("$42") == "42"

    def test_rounding(self):
        assert normalize_answer("0.33333333") == normalize_answer("0.3333299999")

    def test_articles_and_punctuation(self):
        assert normalize_answer("The Hawks!") == "hawks"

    def test_case(self):
        assert normalize_answer("John SMITH") == "john smith"


class TestExactMatch:
    def test_set_semantics(self):
        assert exact_match(["a", "b"], ["b", "a"]) == 1.0

    def test_numeric_equivalence(self):
        assert exact_match(["1,200"], ["1200"]) == 1.0

    def test_mismatch(self):
        assert exact_match(["a"], ["b"]) == 0.0

    def test_subset_is_not_match(self):
        assert exact_match(["a"], ["a", "b"]) == 0.0


class TestNumeracyF1:
    def test_numeric_gold_requires_equality(self):
        assert numeracy_f1(["41"], ["42"]) == 0.0
        assert numeracy_f1(["42.0"], ["42"]) == 1.0

    def test_partial_token_credit_for_text(self):
        score = numeracy_f1(["john smith"], ["john smith jr"])
        assert 0.0 < score < 1.0

    def test_empty_both(self):
        assert numeracy_f1([""], [""]) == 1.0

    def test_zero_overlap(self):
        assert numeracy_f1(["alpha"], ["beta"]) == 0.0


class TestAggregates:
    def test_qa_scores(self):
        em, f1 = qa_scores([["42"], ["a"]], [["42"], ["b"]])
        assert em == 50.0
        assert f1 == 50.0

    def test_denotation_accuracy(self):
        assert denotation_accuracy([["x"]], [["x"]]) == 100.0

    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            qa_scores([["a"]], [])

    def test_label_accuracy(self):
        assert label_accuracy([S, R], [S, S]) == 50.0

    def test_micro_f1_equals_accuracy_single_label(self):
        predictions = [S, R, U, S]
        golds = [S, R, R, S]
        assert micro_f1(predictions, golds) == label_accuracy(predictions, golds)

    def test_micro_f1_empty(self):
        assert micro_f1([], []) == 0.0


def _sample(context, sentence, label, evidence_cells=frozenset(),
            evidence_type=EvidenceType.TABLE):
    return ReasoningSample(
        uid=f"s-{abs(hash(sentence)) % 10**6}",
        task=TaskType.FACT_VERIFICATION,
        context=context,
        sentence=sentence,
        label=label,
        evidence_type=evidence_type,
        evidence_cells=evidence_cells,
    )


class TestFeverousScore:
    def test_score_never_exceeds_accuracy(self, players_context):
        samples = [
            _sample(players_context, "john smith has a points of 31", S,
                    frozenset({(0, "points")})),
            _sample(players_context, "bo chen has a rebounds of 9", S,
                    frozenset({(3, "rebounds")})),
            _sample(players_context, "some unrelated claim entirely", R,
                    frozenset({(2, "team")})),
        ]
        predictions = [S, S, R]
        score = feverous_score(samples, predictions)
        accuracy = label_accuracy(predictions, [s.label for s in samples])
        assert score <= accuracy

    def test_wrong_label_never_scores(self, players_context):
        samples = [_sample(players_context, "john smith has a points of 31", S)]
        assert feverous_score(samples, [R]) == 0.0

    def test_retriever_finds_mentioned_cells(self, players_context):
        retriever = SimulatedRetriever()
        sample = _sample(
            players_context, "john smith has a points of 31", S
        )
        retrieved = retriever.retrieve_cells(sample)
        assert (0, "points") in retrieved or (0, "player") in retrieved

    def test_text_evidence_needs_sentence_overlap(self, players_context):
        retriever = SimulatedRetriever()
        on_topic = _sample(
            players_context, "dana cruz has a points of 19", S,
            evidence_type=EvidenceType.TEXT,
        )
        off_topic = _sample(
            players_context, "qqq www eee rrr", S,
            evidence_type=EvidenceType.TEXT,
        )
        assert retriever.retrieves_text(on_topic)
        assert not retriever.retrieves_text(off_topic)


class TestReport:
    def test_render_table(self):
        text = render_table(
            "T", ["A", "B"], [{"A": 1.25, "B": "x"}, {"A": 2, "B": "yy"}]
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.2" in text and "yy" in text

    def test_em_f1_format(self):
        assert em_f1(12.345, 67.89) == "12.3 / 67.9"
