"""Tests for ``POST /v1/ask``: retrieval-backed QA over a table store.

Covers the end-to-end route (real HTTP, real store), the shared
request-validation path with ``/v1/qa`` (identical 400s and
``sanitize`` behavior), the ``retrieval_miss`` contract, the /metrics
``ask`` section, and the loadgen's ``ask_fraction`` mixed workloads.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import ServeError
from repro.serve import (
    EngineConfig,
    HttpServeClient,
    InferenceEngine,
    ServeClient,
    TASK_ASK,
    TASK_QA,
    TASK_VERIFY,
    build_workload,
    make_server,
    run_load,
    serve_in_thread,
)
from repro.store import Retriever, TableStore, build_index, gold_questions, synth_corpus

pytestmark = pytest.mark.timeout(300)

CORPUS_SEED = 5
CORPUS_SIZE = 80


@pytest.fixture(scope="module")
def store_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("ask") / "store"
    store = TableStore.create(root, shard_size=32)
    store.add(synth_corpus(CORPUS_SIZE, seed=CORPUS_SEED))
    build_index(root, workers=2)
    return root


@pytest.fixture
def served(tiny_qa_model, tiny_verifier, store_root):
    engine = InferenceEngine(
        {TASK_QA: tiny_qa_model, TASK_VERIFY: tiny_verifier},
        EngineConfig(workers=2, max_batch_size=8),
    )
    engine.start()
    server = make_server(engine, retriever=Retriever.open(store_root))
    serve_in_thread(server)
    yield server
    server.shutdown()
    server.server_close()
    engine.stop(drain=True)


def _post(port, path, payload, timeout=30.0):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as reply:
        return reply.status, json.loads(reply.read().decode("utf-8"))


def _post_error(port, path, payload):
    try:
        _post(port, path, payload)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))
    raise AssertionError("expected an HTTP error")


def _gold(n=5):
    return gold_questions(n, corpus_size=CORPUS_SIZE, seed=CORPUS_SEED)


class TestAskEndpoint:
    def test_ask_answers_with_provenance(self, served):
        question = _gold()[0]
        status, payload = _post(
            served.port, "/v1/ask", {"question": question.question}
        )
        assert status == 200
        assert payload["ok"]
        assert payload["task"] == TASK_ASK
        retrieval = payload["retrieval"]
        assert retrieval["k"] == 5
        assert retrieval["retrieve_ms"] >= 0
        assert retrieval["chosen"] == retrieval["hits"][0]["doc_id"]
        assert isinstance(retrieval["passage"], str)
        # the gold table wins retrieval on this corpus
        assert retrieval["hits"][0]["uid"] == question.uid
        assert isinstance(payload["answer"], list)

    def test_top_k_bounds_hits(self, served):
        status, payload = _post(
            served.port, "/v1/ask",
            {"question": _gold()[1].question, "top_k": 1},
        )
        assert status == 200
        assert len(payload["retrieval"]["hits"]) == 1

    def test_miss_is_ok_false_with_typed_prefix(self, served):
        status, payload = _post(
            served.port, "/v1/ask", {"question": "zzzz qqqq wwww"}
        )
        assert status == 200
        assert payload["ok"] is False
        assert payload["error"].startswith("retrieval_miss")
        assert payload["retrieval"]["hits"] == []

    def test_ask_without_store_is_501(self, tiny_qa_model):
        engine = InferenceEngine(
            {TASK_QA: tiny_qa_model}, EngineConfig(workers=1)
        )
        engine.start()
        server = make_server(engine)  # no retriever
        serve_in_thread(server)
        try:
            code, payload = _post_error(
                server.port, "/v1/ask", {"question": "anything ?"}
            )
            assert code == 501
            assert "store" in payload["error"]["message"]
        finally:
            server.shutdown()
            server.server_close()
            engine.stop(drain=False)


class TestSharedValidation:
    """/v1/qa and /v1/ask run the same parse path: identical 400s."""

    def test_ask_rejects_supplied_context(self, served, serve_context):
        code, payload = _post_error(served.port, "/v1/ask", {
            "question": "q ?", "context": serve_context.to_json(),
        })
        assert code == 400
        assert payload["error"]["field"] == "context"

    @pytest.mark.parametrize("top_k", [0, 101, True, "3", 2.5])
    def test_ask_rejects_bad_top_k(self, served, top_k):
        code, payload = _post_error(served.port, "/v1/ask", {
            "question": "q ?", "top_k": top_k,
        })
        assert code == 400
        assert payload["error"]["field"] == "top_k"

    def test_qa_rejects_top_k(self, served, serve_context):
        code, payload = _post_error(served.port, "/v1/qa", {
            "question": "q ?", "context": serve_context.to_json(),
            "top_k": 3,
        })
        assert code == 400
        assert payload["error"]["field"] == "top_k"

    def test_missing_question_is_same_400_on_both(
        self, served, serve_context
    ):
        code_ask, payload_ask = _post_error(served.port, "/v1/ask", {})
        code_qa, payload_qa = _post_error(
            served.port, "/v1/qa",
            {"context": serve_context.to_json()},
        )
        assert code_ask == code_qa == 400
        assert (
            payload_ask["error"]["field"]
            == payload_qa["error"]["field"]
            == "question"
        )

    def test_sanitize_flag_validated_identically(
        self, served, serve_context
    ):
        for path, body in (
            ("/v1/ask", {"question": "q ?", "sanitize": "yes"}),
            ("/v1/qa", {"question": "q ?", "sanitize": "yes",
                        "context": serve_context.to_json()}),
        ):
            code, payload = _post_error(served.port, path, body)
            assert code == 400
            assert payload["error"]["field"] == "sanitize"

    def test_sanitize_true_reports_on_ask(self, served):
        status, payload = _post(served.port, "/v1/ask", {
            "question": _gold()[2].question, "sanitize": True,
        })
        assert status == 200
        assert "sanitize" in payload


class TestAskObservability:
    def test_metrics_ask_section_reconciles(self, served):
        client = HttpServeClient(f"http://127.0.0.1:{served.port}")
        client.ask(_gold()[0].question)
        client.ask("zzzz qqqq wwww")
        metrics = client.metrics()
        ask = metrics["ask"]
        assert ask["requests"] == ask["answered"] + ask["retrieval_miss"]
        assert ask["requests"] >= 2
        assert ask["retrieval_miss"] >= 1
        assert ask["retrieve_ms"]["count"] >= 2

    def test_healthz_reports_store(self, served):
        client = HttpServeClient(f"http://127.0.0.1:{served.port}")
        health = client.healthz()
        assert health["store"] == {"docs": CORPUS_SIZE}


class TestAskClients:
    def test_http_client_ask(self, served):
        client = HttpServeClient(f"http://127.0.0.1:{served.port}")
        response = client.ask(_gold()[3].question, k=3)
        assert response.ok
        assert len(response.retrieval["hits"]) == 3
        miss = client.ask("zzzz qqqq wwww")
        assert not miss.ok
        assert miss.error.startswith("retrieval_miss")

    def test_inprocess_client_ask(
        self, tiny_qa_model, tiny_verifier, store_root
    ):
        engine = InferenceEngine(
            {TASK_QA: tiny_qa_model, TASK_VERIFY: tiny_verifier},
            EngineConfig(workers=1),
        )
        engine.start()
        try:
            client = ServeClient(
                engine, retriever=Retriever.open(store_root)
            )
            response = client.ask(_gold()[4].question)
            assert response.ok
            assert response.retrieval["hits"]
            bare = ServeClient(engine)
            with pytest.raises(ServeError, match="store"):
                bare.ask("q ?")
        finally:
            engine.stop(drain=False)


class TestAskLoadgen:
    def test_ask_fraction_converts_qa_items(self):
        contexts = list(synth_corpus(10, seed=CORPUS_SEED))
        workload = build_workload(
            contexts, 40, tasks=(TASK_QA,), seed=3, ask_fraction=1.0
        )
        assert all(item.task == TASK_ASK for item in workload)
        assert all(item.context is None for item in workload)

    def test_unconverted_items_are_byte_identical(self):
        contexts = list(synth_corpus(10, seed=CORPUS_SEED))
        plain = build_workload(contexts, 40, seed=3)
        mixed = build_workload(contexts, 40, seed=3, ask_fraction=0.5)
        assert any(item.task == TASK_ASK for item in mixed)
        assert any(item.task != TASK_ASK for item in mixed)
        for before, after in zip(plain, mixed):
            if after.task == TASK_ASK:
                assert before.task == TASK_QA
                assert after.sentence == before.sentence
            else:
                assert after == before

    def test_ask_fraction_validated(self):
        contexts = list(synth_corpus(2, seed=CORPUS_SEED))
        with pytest.raises(ServeError):
            build_workload(contexts, 4, ask_fraction=1.5)

    def test_mixed_load_over_the_wire(self, served, store_root):
        # questions built from the stored tables themselves: every ask
        # retrieves successfully, and the report grows an ask latency
        # bucket alongside qa/verify.
        contexts = [
            TableStore.open(store_root).get(f"t{i:08d}")
            for i in range(8)
        ]
        workload = build_workload(
            contexts, 24, seed=1, ask_fraction=0.5
        )
        client = HttpServeClient(f"http://127.0.0.1:{served.port}")
        report = run_load(client, workload, clients=4)
        assert report.completed == len(workload)
        assert report.failures["retrieval_miss"] == 0
        assert TASK_ASK in report.latency

    def test_miss_bucket_counted(self, served, serve_context):
        # the players-table vocabulary shares nothing with the synth
        # corpus: every converted ask item is a retrieval miss, and the
        # report files it under its own failure kind.
        workload = build_workload(
            [serve_context], 6, tasks=(TASK_QA,), seed=0,
            ask_fraction=1.0,
        )
        client = HttpServeClient(f"http://127.0.0.1:{served.port}")
        report = run_load(client, workload, clients=2)
        assert report.completed == 0
        assert report.failures["retrieval_miss"] == len(workload)
        assert report.errors == len(workload)
