"""Tests for the HTTP frontend, clients, and the CLI serve lifecycle."""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import DeadlineExceededError, OverloadedError
from repro.pipelines.samples import ReasoningSample, TaskType
from repro.runtime import RetryPolicy
from repro.serve import (
    EngineConfig,
    HttpServeClient,
    InferenceEngine,
    InferenceRequest,
    ModelRegistry,
    ServeClient,
    TASK_QA,
    TASK_VERIFY,
    build_workload,
    make_server,
    run_load,
    serve_in_thread,
)

pytestmark = pytest.mark.timeout(300)


@pytest.fixture
def served(tiny_qa_model, tiny_verifier):
    engine = InferenceEngine(
        {TASK_QA: tiny_qa_model, TASK_VERIFY: tiny_verifier},
        EngineConfig(workers=2, max_batch_size=8),
    )
    engine.start()
    server = make_server(engine)
    serve_in_thread(server)
    yield server
    server.shutdown()
    server.server_close()
    engine.stop(drain=True)


def _post(port, path, payload, timeout=30.0):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as reply:
        return reply.status, json.loads(reply.read().decode("utf-8"))


class TestEndpoints:
    def test_qa_over_the_wire(self, served, tiny_qa_model, serve_context):
        status, payload = _post(served.port, "/v1/qa", {
            "question": "what is the points of bo chen ?",
            "context": serve_context.to_json(),
        })
        assert status == 200
        assert payload["ok"]
        assert payload["task"] == TASK_QA
        assert tuple(payload["answer"]) == tiny_qa_model.predict(
            ReasoningSample(
                uid="x",
                task=TaskType.QUESTION_ANSWERING,
                context=serve_context,
                sentence="what is the points of bo chen ?",
                answer=("",),
            )
        )
        assert "latency" in payload

    def test_verify_over_the_wire(self, served, serve_context):
        status, payload = _post(served.port, "/v1/verify", {
            "claim": "bo chen has a points of 28",
            "context": serve_context.to_json(),
        })
        assert status == 200
        assert payload["ok"]
        assert payload["label"] in ("supported", "refuted", "unknown")

    def test_healthz_and_metrics(self, served, serve_context):
        client = HttpServeClient(f"http://127.0.0.1:{served.port}")
        health = client.healthz()
        assert health["status"] == "ok"
        assert set(health["models"]) == {TASK_QA, TASK_VERIFY}
        client.qa("what is the points of bo chen ?", serve_context)
        metrics = client.metrics()
        assert metrics["accepted"] >= 1
        assert metrics["reconciles"]
        assert "latency" in metrics and "batches" in metrics

    def test_bad_json_is_400(self, served):
        request = urllib.request.Request(
            f"http://127.0.0.1:{served.port}/v1/qa",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request, timeout=30.0)
        assert caught.value.code == 400

    def test_missing_fields_are_400(self, served, serve_context):
        for payload in (
            {"context": serve_context.to_json()},          # no question
            {"question": "q ?"},                           # no context
            {"question": "q ?", "context": {"bogus": 1}},  # bad context
            {"question": "q ?", "context": serve_context.to_json(),
             "deadline_ms": -5},                           # bad deadline
        ):
            request = urllib.request.Request(
                f"http://127.0.0.1:{served.port}/v1/qa",
                data=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as caught:
                urllib.request.urlopen(request, timeout=30.0)
            assert caught.value.code == 400

    def test_unknown_route_is_404(self, served):
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(
                f"http://127.0.0.1:{served.port}/v1/nope", timeout=30.0
            )
        assert caught.value.code == 404

    def test_listen_backlog_outlives_admission_queue(self, served):
        # Overload must be ruled on by the engine (typed 429), not by
        # the kernel: the stdlib default backlog of 5 resets bursty
        # reconnecting clients before admission control ever runs.
        assert type(served).request_queue_size >= 128


class TestOverloadOverHttp:
    def test_429_with_retry_after(self, tiny_verifier, serve_context):
        # One never-started engine: the queue fills and stays full.
        engine = InferenceEngine(
            {TASK_VERIFY: tiny_verifier},
            EngineConfig(workers=1, queue_limit=1, cache_size=0),
        )
        server = make_server(engine)
        serve_in_thread(server)
        try:
            engine.submit(InferenceRequest(
                id="hog", task=TASK_VERIFY, sentence="hog claim",
                context=serve_context,
            ))
            client = HttpServeClient(f"http://127.0.0.1:{server.port}")
            with pytest.raises(OverloadedError) as caught:
                client.verify("one too many", serve_context)
            assert caught.value.retry_after > 0
            metrics = client.metrics()
            assert metrics["rejected"] >= 1
            assert metrics["reconciles"]
        finally:
            server.shutdown()
            server.server_close()
            engine.stop(drain=False)

    def test_client_retry_eventually_lands(self, tiny_verifier, serve_context):
        engine = InferenceEngine(
            {TASK_VERIFY: tiny_verifier},
            EngineConfig(workers=1, queue_limit=1, cache_size=0),
        )
        pending = engine.submit(InferenceRequest(
            id="hog", task=TASK_VERIFY, sentence="hog claim",
            context=serve_context,
        ))
        client = ServeClient(
            engine,
            retry=RetryPolicy(max_attempts=10, backoff_base=0.01),
        )
        with pytest.raises(OverloadedError):
            client.verify("rejected while full", serve_context)
        engine.start()  # capacity appears; the retrying client lands
        pending.result(10.0)
        response = client.verify("now it fits", serve_context)
        assert response.ok
        engine.stop(drain=True)


class TestLoadgen:
    def test_workload_is_deterministic(self, serve_context):
        first = build_workload([serve_context], 16, seed=7)
        second = build_workload([serve_context], 16, seed=7)
        assert [(w.task, w.sentence) for w in first] == [
            (w.task, w.sentence) for w in second
        ]
        assert {w.task for w in first} == {TASK_QA, TASK_VERIFY}

    def test_run_load_reconciles_with_metrics(self, served, serve_context):
        client = HttpServeClient(f"http://127.0.0.1:{served.port}")
        report = run_load(
            client, build_workload([serve_context], 24, seed=3), clients=3
        )
        assert report.sent == 24
        assert report.completed + report.rejected + report.errors == 24
        assert report.rps > 0
        metrics = client.metrics()
        assert metrics["reconciles"]
        json.dumps(report.to_json())  # report must serialize as-is


class TestCliServeLifecycle:
    """End-to-end: registry on disk, `repro serve` subprocess, SIGTERM."""

    @pytest.fixture
    def registry_dir(self, tmp_path, tiny_qa_model, tiny_verifier):
        registry = ModelRegistry(tmp_path / "registry")
        registry.save(tiny_qa_model, "qa-model", metrics={"em": 1.0})
        registry.save(tiny_verifier, "verifier", metrics={"accuracy": 1.0})
        return tmp_path / "registry"

    def _spawn(self, registry_dir, *extra):
        from pathlib import Path

        src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [str(src), env.get("PYTHONPATH", "")])
        )
        env["PYTHONUNBUFFERED"] = "1"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--registry", str(registry_dir), "--port", "0", *extra],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        port = None
        deadline = time.monotonic() + 60
        lines = []
        while time.monotonic() < deadline:
            line = process.stdout.readline()
            if not line:
                break
            lines.append(line)
            if line.startswith("serving on http://"):
                port = int(line.split(":")[2].split()[0])
                break
        if port is None:
            process.kill()
            raise AssertionError("server never came up:\n" + "".join(lines))
        return process, port

    def test_sigterm_drains_and_exits_zero(self, registry_dir, serve_context):
        process, port = self._spawn(registry_dir)
        try:
            client = HttpServeClient(f"http://127.0.0.1:{port}")
            # prove both tasks answer over the wire from the registry
            assert client.qa(
                "what is the points of bo chen ?", serve_context
            ).ok
            assert client.verify(
                "bo chen has a points of 28", serve_context
            ).ok

            # SIGTERM in the middle of a load burst
            import threading

            workload = build_workload([serve_context], 60, seed=5)
            report_box = {}

            def burst():
                report_box["report"] = run_load(client, workload, clients=3)

            loader = threading.Thread(target=burst)
            loader.start()
            time.sleep(0.2)
            process.send_signal(signal.SIGTERM)
            loader.join(timeout=60)
            output = process.communicate(timeout=60)[0]
        finally:
            if process.poll() is None:
                process.kill()
        assert process.returncode == 0, output
        assert "draining" in output
        marker = "final stats: "
        stats_line = next(
            line for line in output.splitlines() if marker in line
        )
        stats = json.loads(stats_line.split(marker, 1)[1])
        # every request the engine ever accepted was resolved
        assert stats["reconciles"]
        assert stats["in_flight"] == 0
        assert stats["accepted"] == stats["completed"] + stats["rejected"]


def _post_error(port, path, payload):
    """POST expecting an HTTP error; returns (status, decoded body)."""
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with pytest.raises(urllib.error.HTTPError) as caught:
        urllib.request.urlopen(request, timeout=30.0)
    body = json.loads(caught.value.read().decode("utf-8"))
    return caught.value.code, body


class TestStrictValidation:
    """Malformed tables are field-level 400s, never 500s."""

    def _payload(self, serve_context, **table_overrides):
        context = serve_context.to_json()
        context["table"] = {**context["table"], **table_overrides}
        return {"question": "what is the points of bo chen ?",
                "context": context}

    def test_ragged_row_names_the_field(self, served, serve_context):
        payload = self._payload(serve_context)
        payload["context"]["table"]["rows"] = [
            row[:-1] for row in payload["context"]["table"]["rows"]
        ]
        status, body = _post_error(served.port, "/v1/qa", payload)
        assert status == 400
        assert not body["ok"]
        assert body["error"]["field"] == "context.table.rows[0]"
        assert "ragged" in body["error"]["message"]
        assert "sanitize" in body["error"]["message"]  # points at the fix

    def test_duplicate_header_names_the_field(self, served, serve_context):
        payload = self._payload(serve_context)
        columns = payload["context"]["table"]["columns"]
        columns[1]["name"] = columns[0]["name"].upper()  # case-insensitive
        status, body = _post_error(served.port, "/v1/qa", payload)
        assert status == 400
        assert body["error"]["field"] == "context.table.columns[1].name"
        assert "columns[0]" in body["error"]["message"]  # first use cited

    def test_empty_header_names_the_field(self, served, serve_context):
        payload = self._payload(serve_context)
        payload["context"]["table"]["columns"][0]["name"] = "   "
        status, body = _post_error(served.port, "/v1/qa", payload)
        assert status == 400
        assert body["error"]["field"] == "context.table.columns[0].name"

    def test_non_string_cell_names_the_field(self, served, serve_context):
        payload = self._payload(serve_context)
        payload["context"]["table"]["rows"][1][2] = 28
        status, body = _post_error(served.port, "/v1/qa", payload)
        assert status == 400
        assert body["error"]["field"] == "context.table.rows[1][2]"
        assert "int" in body["error"]["message"]

    def test_empty_columns_rejected(self, served, serve_context):
        payload = self._payload(serve_context, columns=[], rows=[])
        status, body = _post_error(served.port, "/v1/qa", payload)
        assert status == 400
        assert body["error"]["field"] == "context.table.columns"

    def test_sanitize_flag_must_be_boolean(self, served, serve_context):
        payload = self._payload(serve_context)
        payload["sanitize"] = "yes"
        status, body = _post_error(served.port, "/v1/qa", payload)
        assert status == 400
        assert body["error"]["field"] == "sanitize"


class TestSanitizeOverHttp:
    def _messy_payload(self, serve_context):
        """Ragged rows + footnoted cells: payload and cell damage."""
        context = serve_context.to_json()
        table = dict(context["table"])
        rows = [list(row) for row in table["rows"]]
        rows[0][2] = rows[0][2] + " [a]"     # footnote marker
        rows[1] = rows[1][:-1]               # ragged: short one cell
        table["rows"] = rows
        context["table"] = table
        return context

    def test_strict_rejects_then_sanitize_repairs(
        self, served, serve_context
    ):
        context = self._messy_payload(serve_context)
        question = "what is the points of bo chen ?"
        status, body = _post_error(
            served.port, "/v1/qa",
            {"question": question, "context": context},
        )
        assert status == 400  # same table, no flag: strict path
        status, payload = _post(served.port, "/v1/qa", {
            "question": question, "context": context, "sanitize": True,
        })
        assert status == 200
        assert payload["ok"]
        report = payload["sanitize"]
        assert report["structure"]["rows_padded"] == 1
        assert report["repairs"]["footnote"] >= 1
        assert report["errors"] == []

    def test_clean_table_reports_no_changes(self, served, serve_context):
        status, payload = _post(served.port, "/v1/qa", {
            "question": "what is the points of bo chen ?",
            "context": serve_context.to_json(),
            "sanitize": True,
        })
        assert status == 200
        assert payload["sanitize"]["structure"] == {}
        assert payload["sanitize"]["cells"].get("repaired", 0) == 0

    def test_metrics_aggregate_sanitize_counters(
        self, served, serve_context
    ):
        context = self._messy_payload(serve_context)
        _post(served.port, "/v1/qa", {
            "question": "what is the points of bo chen ?",
            "context": context, "sanitize": True,
        })
        with urllib.request.urlopen(
            f"http://127.0.0.1:{served.port}/metrics", timeout=30.0
        ) as reply:
            metrics = json.loads(reply.read().decode("utf-8"))
        assert metrics["sanitize"]["requests"] >= 1
        assert metrics["sanitize"]["tables_changed"] >= 1
        assert metrics["sanitize"]["cells_repaired"] >= 1

    def test_in_process_client_sanitizes(self, tiny_qa_model, serve_context):
        from repro.messy import perturb_context

        engine = InferenceEngine(
            {TASK_QA: tiny_qa_model}, EngineConfig(workers=1)
        )
        engine.start()
        try:
            client = ServeClient(engine)
            messy = perturb_context(serve_context, "client:0", "light")
            response = client.qa(
                "what is the points of bo chen ?", messy, sanitize=True
            )
            assert response.ok
            assert response.sanitize is not None
            assert engine.stats()["sanitize"]["requests"] == 1
        finally:
            engine.stop(drain=True)

    def test_overload_still_429_with_sanitize(
        self, tiny_verifier, serve_context
    ):
        # Sanitization must not bypass admission control.
        engine = InferenceEngine(
            {TASK_VERIFY: tiny_verifier},
            EngineConfig(workers=1, queue_limit=1, cache_size=0),
        )
        server = make_server(engine)
        serve_in_thread(server)
        try:
            engine.submit(InferenceRequest(
                id="hog", task=TASK_VERIFY, sentence="hog claim",
                context=serve_context,
            ))
            client = HttpServeClient(f"http://127.0.0.1:{server.port}")
            with pytest.raises(OverloadedError):
                client.verify("one too many", serve_context, sanitize=True)
            # rejected requests never reach the model: not counted
            assert engine.stats()["sanitize"]["requests"] == 0
        finally:
            server.shutdown()
            server.server_close()
            engine.stop(drain=False)


class TestLoadgenMessy:
    def test_messy_workload_is_deterministic(self, serve_context):
        build = lambda: build_workload(  # noqa: E731
            [serve_context], 16, seed=7,
            messy_fraction=0.5, sanitize_messy=True,
        )
        first, second = build(), build()
        assert [
            (w.task, w.sentence, w.sanitize, w.context.table.column_names)
            for w in first
        ] == [
            (w.task, w.sentence, w.sanitize, w.context.table.column_names)
            for w in second
        ]
        assert any(w.sanitize for w in first)
        assert not all(w.sanitize for w in first)

    def test_clean_share_matches_fraction_zero_run(self, serve_context):
        from repro.tables.serialize import table_to_json

        clean = build_workload([serve_context], 16, seed=7)
        mixed = build_workload(
            [serve_context], 16, seed=7,
            messy_fraction=0.5, sanitize_messy=True,
        )
        # same questions in the same order; only messy contexts swapped
        assert [(w.task, w.sentence) for w in clean] == [
            (w.task, w.sentence) for w in mixed
        ]
        for base, item in zip(clean, mixed):
            if not item.sanitize:
                assert table_to_json(item.context.table) == table_to_json(
                    base.context.table
                )

    def test_messy_without_sanitize_keeps_flag_off(self, serve_context):
        items = build_workload(
            [serve_context], 12, seed=3, messy_fraction=1.0
        )
        assert all(not w.sanitize for w in items)
        assert all(w.context.meta.get("perturb") == "heavy" for w in items)

    def test_bad_fraction_and_profile_fail_fast(self, serve_context):
        from repro.errors import MessyTableError, ServeError

        with pytest.raises(ServeError):
            build_workload([serve_context], 4, messy_fraction=1.5)
        with pytest.raises(MessyTableError):
            build_workload(
                [serve_context], 4,
                messy_fraction=0.5, messy_profile="nope",
            )

    def test_run_load_drives_sanitized_requests(self, served, serve_context):
        client = HttpServeClient(f"http://127.0.0.1:{served.port}")
        workload = build_workload(
            [serve_context], 12, seed=9,
            messy_fraction=0.5, sanitize_messy=True,
        )
        n_messy = sum(1 for w in workload if w.sanitize)
        assert n_messy >= 1
        report = run_load(client, workload, clients=1)  # closed loop: no 429
        assert report.completed == 12
        assert report.errors == 0
        metrics = client.metrics()
        assert metrics["sanitize"]["requests"] >= n_messy
        assert metrics["reconciles"]


class TestAdminReload:
    def test_reload_without_reloader_is_501(self, served):
        status, body = _post_error(served.port, "/v1/admin/reload", {})
        assert status == 501
        assert body["error"]["type"] == "not_implemented"

    def test_reload_over_http_swaps_engine_model(
        self, tiny_qa_model, tiny_verifier, serve_context, tmp_path
    ):
        registry = ModelRegistry(tmp_path / "registry")
        registry.save(tiny_verifier, "verifier")
        engine = InferenceEngine(
            {TASK_VERIFY: registry.load("verifier")},
            EngineConfig(workers=1),
        )
        engine.start()

        def reloader():
            fresh = registry.load("verifier")
            return {
                "changes": {
                    TASK_VERIFY: engine.swap_model(TASK_VERIFY, fresh)
                }
            }

        server = make_server(engine, reloader=reloader)
        serve_in_thread(server)
        try:
            client = HttpServeClient(f"http://127.0.0.1:{server.port}")
            before = client.verify("bo chen has a points of 28", serve_context)
            assert before.model == "verifier@v0001"
            # register a new version; the reload endpoint picks it up
            registry.save(tiny_verifier, "verifier")
            summary = client.reload()
            assert summary["ok"] is True
            change = summary["reload"]["changes"][TASK_VERIFY]
            assert change["old"] == "verifier@v0001"
            assert change["new"] == "verifier@v0002"
            after = client.verify(
                "a brand new claim after reload", serve_context
            )
            assert after.model == "verifier@v0002"
            metrics = client.metrics()
            assert metrics["reloads"] == 1
            assert metrics["reconciles"]
        finally:
            server.shutdown()
            server.server_close()
            engine.stop(drain=True)

    def test_reload_failure_is_409(self, tiny_verifier, serve_context):
        from repro.errors import ReproError

        engine = InferenceEngine(
            {TASK_VERIFY: tiny_verifier}, EngineConfig(workers=1)
        )
        engine.start()

        def reloader():
            raise ReproError("registry artifact digest mismatch")

        server = make_server(engine, reloader=reloader)
        serve_in_thread(server)
        try:
            status, body = _post_error(server.port, "/v1/admin/reload", {})
            assert status == 409
            assert body["error"]["type"] == "reload_failed"
            # and the server still serves afterwards
            client = HttpServeClient(f"http://127.0.0.1:{server.port}")
            assert client.verify("still serving ?", serve_context).ok
        finally:
            server.shutdown()
            server.server_close()
            engine.stop(drain=True)


class TestPoolOverHttp:
    def test_pool_behind_http_frontend(self, tmp_path, serve_context):
        from repro.serve import PoolConfig, pool_from_registry
        from repro.serve.stub import FixedServiceQA, FixedServiceVerifier

        registry = ModelRegistry(tmp_path / "registry")
        registry.save(FixedServiceQA(0.002), "qa-stub")
        registry.save(FixedServiceVerifier(0.002), "verify-stub")
        pool = pool_from_registry(
            str(tmp_path / "registry"),
            config=PoolConfig(replicas=2, engine=EngineConfig(workers=1)),
        )
        pool.start()
        server = make_server(pool, reloader=lambda: pool.reload())
        serve_in_thread(server)
        try:
            client = HttpServeClient(f"http://127.0.0.1:{server.port}")
            qa = client.qa("what is the points of bo chen ?", serve_context)
            assert qa.ok and qa.model == "qa-stub@v0001"
            verify = client.verify(
                "bo chen has a points of 28", serve_context
            )
            assert verify.ok and verify.model == "verify-stub@v0001"
            metrics = client.metrics()
            assert metrics["completed"] == 2
            assert metrics["reconciles"]
            assert len(metrics["replicas"]) == 2
            # reload over the wire rolls the replicas
            registry.save(FixedServiceQA(0.001), "qa-stub")
            summary = client.reload()
            assert summary["reload"]["new"]["qa"] == "qa-stub@v0002"
            after = client.qa(
                "what is the team of raj patel ?", serve_context
            )
            assert after.model == "qa-stub@v0002"
        finally:
            server.shutdown()
            server.server_close()
            pool.stop(drain=True)


class TestOpenLoopLoadgen:
    def test_open_loop_reports_offered_rate(self, served, serve_context):
        from repro.serve import run_load_open

        client = ServeClient(served.engine)
        workload = build_workload([serve_context], 40, seed=11)
        report = run_load_open(client, workload, rate=200.0, clients=8)
        assert report.mode == "open"
        assert report.offered_rps == 200.0
        assert report.completed + report.rejected + report.errors == 40
        assert report.errors == 0
        payload = report.to_json()
        assert payload["mode"] == "open"
        assert payload["offered_rps"] == 200.0
        # the schedule paces the run: 40 requests at 200/s ≥ 0.2s
        assert report.duration_s >= 0.19

    def test_open_loop_counts_stall_as_latency(self, serve_context):
        """Coordinated omission: a server stall must surface in the
        tail, not silently stretch the arrival schedule."""
        from repro.serve import run_load_open
        from repro.serve.stub import FixedServiceVerifier

        slow = FixedServiceVerifier(0.05)  # 50ms/request, single file
        engine = InferenceEngine(
            {TASK_VERIFY: slow},
            EngineConfig(workers=1, max_batch_size=1, cache_size=0),
        )
        engine.start()
        try:
            client = ServeClient(engine)
            workload = build_workload(
                [serve_context], 20, tasks=(TASK_VERIFY,), seed=3
            )
            # offered 100/s against ~20/s capacity: queueing must show
            report = run_load_open(client, workload, rate=100.0, clients=20)
            assert report.completed == 20
            tail = report.latency["overall"]
            # the last arrival waited ~19 service times; p99 sees it
            assert tail["p99_ms"] > 300.0
            assert tail["p99_ms"] > tail["p50_ms"]
        finally:
            engine.stop(drain=True)

    def test_bad_rate_and_clients_are_typed(self, served, serve_context):
        from repro.errors import ServeError
        from repro.serve import run_load_open

        client = ServeClient(served.engine)
        workload = build_workload([serve_context], 4, seed=1)
        with pytest.raises(ServeError):
            run_load_open(client, workload, rate=0.0)
        with pytest.raises(ServeError):
            run_load_open(client, workload, rate=10.0, clients=0)


class TestDeadlinesOverHttp:
    def test_impossible_deadline_is_504(self, served, serve_context):
        client = HttpServeClient(f"http://127.0.0.1:{served.port}")
        # warm the engine so its p50 compute estimate is non-zero —
        # then a microsecond budget is rejected deterministically
        # whichever side of zero the header-to-dispatch shrink lands.
        assert client.qa(
            "what is the points of bo chen ?", serve_context
        ).ok
        with pytest.raises(DeadlineExceededError):
            client.qa(
                "what is the team of raj patel ?", serve_context,
                deadline_s=1e-6,
            )
        metrics = client.metrics()
        assert metrics["deadline_rejected"] >= 1
        assert metrics["reconciles"]

    def test_deadline_header_wins_over_body(self, served, serve_context):
        # body says plenty of time, header says none: header rules.
        request = urllib.request.Request(
            f"http://127.0.0.1:{served.port}/v1/qa",
            data=json.dumps({
                "question": "what is the points of bo chen ?",
                "context": serve_context.to_json(),
                "deadline_ms": 60_000,
            }).encode("utf-8"),
            headers={
                "Content-Type": "application/json",
                "X-Repro-Deadline-Ms": "0.001",
            },
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request, timeout=30.0)
        assert caught.value.code == 504
        body = json.loads(caught.value.read().decode("utf-8"))
        assert body["error"]["type"] == "deadline"
        assert "remaining_ms" in body["error"]

    def test_malformed_deadline_header_is_400(self, served, serve_context):
        for bad in ("nope", "-3", "0"):
            request = urllib.request.Request(
                f"http://127.0.0.1:{served.port}/v1/qa",
                data=json.dumps({
                    "question": "q ?",
                    "context": serve_context.to_json(),
                }).encode("utf-8"),
                headers={
                    "Content-Type": "application/json",
                    "X-Repro-Deadline-Ms": bad,
                },
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as caught:
                urllib.request.urlopen(request, timeout=30.0)
            assert caught.value.code == 400, bad

    def test_loadgen_classifies_deadline_failures(
        self, served, serve_context
    ):
        from repro.serve import run_load

        client = HttpServeClient(f"http://127.0.0.1:{served.port}")
        assert client.qa(
            "what is the points of bo chen ?", serve_context
        ).ok  # warm, so the estimate gate is live
        workload = build_workload([serve_context], 8, seed=5)

        class TinyDeadlineClient:
            def qa(self, sentence, context, **kwargs):
                return client.qa(sentence, context, deadline_s=1e-6)

            def verify(self, sentence, context, **kwargs):
                return client.verify(sentence, context, deadline_s=1e-6)

        report = run_load(TinyDeadlineClient(), workload, clients=2)
        assert report.completed == 0
        assert report.failures["deadline"] == 8
        assert report.errors == 8  # deadline is a non-429 failure
        payload = report.to_json()
        assert payload["failures"]["deadline"] == 8
        assert payload["failures"]["overloaded"] == 0


class TestPoolHealthz:
    def test_healthz_reports_replica_states(self, tmp_path, serve_context):
        from repro.serve import PoolConfig, pool_from_registry
        from repro.serve.stub import FixedServiceQA, FixedServiceVerifier

        registry = ModelRegistry(tmp_path / "registry")
        registry.save(FixedServiceQA(0.002), "qa-stub")
        registry.save(FixedServiceVerifier(0.002), "verify-stub")
        pool = pool_from_registry(
            str(tmp_path / "registry"),
            config=PoolConfig(replicas=2, engine=EngineConfig(workers=1)),
        )
        pool.start()
        server = make_server(pool)
        serve_in_thread(server)
        try:
            client = HttpServeClient(f"http://127.0.0.1:{server.port}")
            health = client.healthz()
            assert health["status"] == "ok"
            assert health["routable_replicas"] == 2
            states = {e["slot"]: e["state"] for e in health["replicas"]}
            assert states == {0: "ready", 1: "ready"}
        finally:
            server.shutdown()
            server.server_close()
            pool.stop(drain=True)
