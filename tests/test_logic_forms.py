"""Unit tests for the logical-form parser and executor."""

import pytest

from repro.errors import (
    ProgramExecutionError,
    ProgramParseError,
    ProgramTypeError,
)
from repro.programs.logic import parse_logic
from repro.programs.logic.ops import OPERATORS
from repro.programs.logic.parser import LogicNode


def truth(table, source):
    result = parse_logic(source).execute(table)
    assert result.truth is not None, source
    return result.truth


class TestParser:
    def test_nested_structure(self):
        program = parse_logic(
            "eq { hop { filter_eq { all_rows ; team ; hawks } ; player } ; x }"
        )
        root = program.root
        assert root.op == "eq"
        assert isinstance(root.args[0], LogicNode)
        assert root.args[0].op == "hop"
        assert root.args[1] == "x"

    def test_token_round_trip(self):
        source = "greater { max { all_rows ; points } ; 10 }"
        program = parse_logic(source)
        assert parse_logic(" ".join(program.tokens())).root == program.root

    def test_multiword_arguments(self):
        program = parse_logic(
            "eq { hop { filter_eq { all_rows ; player ; john smith } ; team } "
            "; hawks }"
        )
        leaves = program.root.leaf_strings()
        assert "john smith" in leaves

    def test_walk_visits_all_nodes(self):
        program = parse_logic(
            "and { only { filter_eq { all_rows ; a ; x } } ; eq { 1 ; 1 } }"
        )
        ops = [node.op for node in program.root.walk()]
        assert ops == ["and", "only", "filter_eq", "eq"]

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "eq { 1 ; 2",
            "eq 1 ; 2 }",
            "unknown_op { all_rows }",
            "eq { 1 ; 2 } trailing { }",
            "eq { 1 , 2 }",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ProgramParseError):
            parse_logic(bad)


class TestFilters:
    def test_filter_eq_count(self, players_table):
        assert truth(
            players_table,
            "eq { count { filter_eq { all_rows ; team ; hawks } } ; 2 }",
        )

    def test_filter_greater(self, players_table):
        assert truth(
            players_table,
            "eq { count { filter_greater { all_rows ; points ; 20 } } ; 3 }",
        )

    def test_filter_less_eq(self, players_table):
        assert truth(
            players_table,
            "eq { count { filter_less_eq { all_rows ; points ; 17 } } ; 2 }",
        )

    def test_filter_not_eq(self, players_table):
        assert truth(
            players_table,
            "eq { count { filter_not_eq { all_rows ; team ; hawks } } ; 3 }",
        )

    def test_chained_filters(self, players_table):
        assert truth(
            players_table,
            "eq { count { filter_greater { filter_eq { all_rows ; team ; "
            "bulls } ; points ; 15 } } ; 1 }",
        )


class TestSuperlativesAndOrdinals:
    def test_argmax_hop(self, players_table):
        assert truth(
            players_table,
            "eq { hop { argmax { all_rows ; points } ; player } ; john smith }",
        )

    def test_argmin_hop(self, players_table):
        assert truth(
            players_table,
            "eq { hop { argmin { all_rows ; points } ; player } ; raj patel }",
        )

    def test_nth_max(self, players_table):
        assert truth(players_table, "eq { nth_max { all_rows ; points ; 2 } ; 28 }")

    def test_nth_argmax(self, players_table):
        assert truth(
            players_table,
            "eq { hop { nth_argmax { all_rows ; points ; 3 } ; player } ; "
            "mike jones }",
        )

    def test_nth_min_out_of_range(self, players_table):
        with pytest.raises(ProgramExecutionError):
            parse_logic("nth_min { all_rows ; points ; 9 }").execute(players_table)


class TestAggregation:
    def test_sum(self, players_table):
        assert truth(players_table, "eq { sum { all_rows ; points } ; 110 }")

    def test_avg_round_eq(self, players_table):
        assert truth(players_table, "round_eq { avg { all_rows ; points } ; 22 }")

    def test_round_eq_tolerance(self, players_table):
        assert truth(players_table, "round_eq { avg { all_rows ; points } ; 22.5 }")
        assert not truth(players_table, "round_eq { avg { all_rows ; points } ; 40 }")

    def test_diff(self, players_table):
        assert truth(
            players_table,
            "eq { diff { max { all_rows ; points } ; min { all_rows ; points } } "
            "; 19 }",
        )


class TestMajorityUniqueConnectives:
    def test_most_greater(self, players_table):
        assert truth(players_table, "most_greater { all_rows ; points ; 15 }")

    def test_all_greater(self, players_table):
        assert truth(players_table, "all_greater { all_rows ; points ; 10 }")
        assert not truth(players_table, "all_greater { all_rows ; points ; 15 }")

    def test_most_eq(self, players_table):
        assert not truth(players_table, "most_eq { all_rows ; team ; hawks }")

    def test_only(self, players_table):
        assert truth(
            players_table, "only { filter_eq { all_rows ; team ; heat } }"
        )
        assert not truth(
            players_table, "only { filter_eq { all_rows ; team ; hawks } }"
        )

    def test_and_or_not(self, players_table):
        assert truth(
            players_table,
            "and { greater { 2 ; 1 } ; eq { 1 ; 1 } }",
        )
        assert truth(
            players_table,
            "or { greater { 1 ; 2 } ; eq { 1 ; 1 } }",
        )
        assert truth(players_table, "not { greater { 1 ; 2 } }")

    def test_connective_type_error(self, players_table):
        with pytest.raises(ProgramTypeError):
            parse_logic("and { count { all_rows } ; eq { 1 ; 1 } }").execute(
                players_table
            )


class TestHighlighting:
    def test_filter_highlights(self, players_table):
        result = parse_logic(
            "eq { hop { filter_eq { all_rows ; team ; heat } ; points } ; 28 }"
        ).execute(players_table)
        assert (3, "team") in result.highlighted_cells
        assert (3, "points") in result.highlighted_cells

    def test_superlative_highlights_whole_column(self, players_table):
        result = parse_logic(
            "eq { hop { argmax { all_rows ; points } ; player } ; john smith }"
        ).execute(players_table)
        points_cells = {
            row for row, column in result.highlighted_cells if column == "points"
        }
        assert points_cells == {0, 1, 2, 3, 4}


class TestOperatorRegistry:
    def test_all_operators_have_categories(self):
        for spec in OPERATORS.values():
            assert spec.category
            assert spec.returns in ("rows", "value", "bool", "number")

    def test_paper_reasoning_types_covered(self):
        categories = {spec.category for spec in OPERATORS.values()}
        for required in (
            "count", "superlative", "comparative", "aggregate", "majority",
            "unique", "ordinal",
        ):
            assert required in categories, required

    def test_arity_enforced_at_parse(self):
        with pytest.raises(ProgramParseError):
            parse_logic("count { all_rows ; points }")
