"""Property tests: the hot-path caches never change an execution result.

The value/schema caches (memoized coercion and keys on ``Value``, the
``parse_value`` LRU, the schema index map) must be pure accelerations.
These tests build the *same* table twice — once through the cached
parser, once through ``parse_value.__wrapped__`` with fresh, memo-free
``Value`` instances — run the same programs on both, and require
identical :class:`ExecutionResult`s, highlighted cells included.  A
cold-vs-warm pass re-executes on the same table so populated memos are
also exercised against their first computation.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.programs.sql import parse_sql
from repro.tables.table import Row, Table
from repro.tables.values import parse_value

_COLUMNS = ["name", "amount", "day"]

_names = st.sampled_from(
    ["alpha", "beta", "Gamma", "delta", " beta ", "epsilon"]
)
#: numeric surface forms that coerce to overlapping values
_amounts = st.sampled_from(
    ["1,000", "1000", "$1,000", "500", "0.5", "12%", "-17", "+8"]
)
#: the same few days written in both supported date syntaxes
_days = st.sampled_from(
    [
        "2020-01-05",
        "January 5, 2020",
        "2021-03-01",
        "March 1, 2021",
        "2020-02-29",
    ]
)


@st.composite
def raw_rows(draw) -> list[list[str]]:
    n_rows = draw(st.integers(min_value=1, max_value=8))
    return [
        [draw(_names), draw(_amounts), draw(_days)] for _ in range(n_rows)
    ]


@st.composite
def queries(draw) -> str:
    kind = draw(st.sampled_from(
        ["lookup", "count", "count_distinct", "sum", "order", "gt", "date"]
    ))
    if kind == "lookup":
        name = draw(_names)
        return f"select amount from w where name = '{name.strip()}'"
    if kind == "count":
        return "select count ( * ) from w"
    if kind == "count_distinct":
        column = draw(st.sampled_from(["amount", "day", "name"]))
        return f"select count ( distinct {column} ) from w"
    if kind == "sum":
        return "select sum ( amount ) from w"
    if kind == "order":
        direction = draw(st.sampled_from(["asc", "desc"]))
        limit = draw(st.integers(min_value=1, max_value=3))
        return f"select name from w order by amount {direction} limit {limit}"
    if kind == "gt":
        return "select name from w where amount > 400"
    day = draw(_days)
    return f"select name from w where day = '{day}'"


def cached_table(rows: list[list[str]]) -> Table:
    """The production path: ``from_rows`` parses via the LRU-cached parser."""
    return Table.from_rows(_COLUMNS, rows)


def cache_free_table(rows: list[list[str]]) -> Table:
    """Same table, but every cell is a fresh memo-free ``Value``."""
    parsed = [
        Row(tuple(parse_value.__wrapped__(cell) for cell in row))
        for row in rows
    ]
    reference = cached_table(rows)
    return Table(
        schema=reference.schema, rows=tuple(parsed),
        title=reference.title, caption=reference.caption,
        row_name_column=reference.row_name_column,
    )


def fingerprint(result) -> tuple:
    """Everything observable about an ExecutionResult, hashable."""
    return (
        tuple((v.raw, v.type, v.typed) for v in result.values),
        tuple(result.denotation()),
        frozenset(result.highlighted_cells),
    )


@settings(max_examples=150, deadline=None)
@given(rows=raw_rows(), sql=queries())
def test_cached_and_cache_free_execution_agree(rows, sql):
    program = parse_sql(sql)
    cached = program.execute(cached_table(rows))
    fresh = program.execute(cache_free_table(rows))
    assert fingerprint(cached) == fingerprint(fresh), sql


@settings(max_examples=100, deadline=None)
@given(rows=raw_rows(), sql=queries())
def test_cold_and_warm_execution_agree(rows, sql):
    """Re-running on the same table (memos now populated) changes nothing."""
    program = parse_sql(sql)
    table = cache_free_table(rows)  # fresh memos: first run populates them
    cold = fingerprint(program.execute(table))
    warm = fingerprint(program.execute(table))
    assert cold == warm, sql


@settings(max_examples=100, deadline=None)
@given(rows=raw_rows())
def test_value_semantics_survive_caching(rows):
    """equals / ordering / canonical keys match between the two parses."""
    for row in rows:
        for raw in row:
            cached = parse_value(raw)
            fresh = parse_value.__wrapped__(raw)
            assert cached.canonical_key() == fresh.canonical_key()
            assert cached.equals(fresh) or cached.is_null
            for other_raw in row:
                other = parse_value(other_raw)
                other_fresh = parse_value.__wrapped__(other_raw)
                assert cached.equals(other) == fresh.equals(other_fresh)
                if not (cached.is_null or other.is_null):
                    assert (cached < other) == (fresh < other_fresh)
