"""Integrity manifests, corruption faults, and graceful-degradation loads.

The property at the heart of the layer: **any** single-byte corruption
of a saved corpus — in the data file or in its sidecar manifest — is
detected at load time, and the lenient modes salvage exactly the intact
records while accounting for every casualty.
"""

import json

import pytest

from repro.errors import DatasetError, FileFormatError, IntegrityError
from repro.io import (
    load_contexts,
    load_samples,
    read_jsonl,
    save_contexts,
    save_samples,
)
from repro.pipelines import UCTR, UCTRConfig
from repro.pipelines.samples import ReasoningSample, TaskType
from repro.runtime.faults import CorruptionSpec, corrupt_file
from repro.validate import (
    LoadResult,
    RejectRecord,
    manifest_path,
    read_manifest,
    verify_manifest,
)


@pytest.fixture
def samples(players_context):
    return [
        ReasoningSample(
            uid=f"int-{i}",
            task=TaskType.QUESTION_ANSWERING,
            context=players_context,
            sentence=f"question {i} ?",
            answer=(str(i),),
        )
        for i in range(6)
    ]


@pytest.fixture
def corpus(tmp_path, samples):
    path = tmp_path / "corpus.jsonl"
    save_samples(path, samples)
    return path


class TestManifest:
    def test_save_writes_sidecar(self, corpus):
        sidecar = manifest_path(corpus)
        assert sidecar.name == "corpus.jsonl.manifest.json"
        manifest = read_manifest(corpus)
        assert manifest is not None
        assert manifest.record_kind == "samples"
        assert manifest.records == 6
        assert len(manifest.data_sha256) == 64
        assert manifest.data_bytes == corpus.stat().st_size

    def test_generator_stamp_names_version(self, tmp_path, samples):
        from repro import __version__

        path = tmp_path / "stamped.jsonl"
        save_samples(path, samples, generator={"seed": 7})
        manifest = read_manifest(path)
        assert manifest.generator["repro_version"] == __version__
        assert manifest.generator["seed"] == 7

    def test_read_manifest_absent_is_none(self, tmp_path):
        assert read_manifest(tmp_path / "nothing.jsonl") is None

    def test_verify_required_raises_when_absent(self, tmp_path, samples):
        path = tmp_path / "bare.jsonl"
        save_samples(path, samples, manifest=False)
        assert verify_manifest(path) is None
        with pytest.raises(IntegrityError):
            verify_manifest(path, required=True)

    def test_load_without_manifest_is_backward_compatible(
        self, tmp_path, samples
    ):
        path = tmp_path / "bare.jsonl"
        save_samples(path, samples, manifest=False)
        assert len(load_samples(path)) == 6

    def test_record_count_mismatch_detected(self, corpus):
        # A manifest whose digest matches but whose count lies: rewrite
        # the sidecar claiming one extra record.
        from repro.validate import write_manifest

        write_manifest(corpus, record_kind="samples", records=7)
        with pytest.raises(IntegrityError, match="count"):
            load_samples(corpus)

    def test_contexts_manifest_round_trip(self, tmp_path, players_context):
        path = tmp_path / "ctx.jsonl"
        save_contexts(path, [players_context])
        assert read_manifest(path).record_kind == "contexts"
        (loaded,) = load_contexts(path, integrity="require")
        assert loaded.uid == players_context.uid


class TestCorruptionFaults:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            CorruptionSpec(kind="melt")
        with pytest.raises(ValueError):
            CorruptionSpec(kind="bit-flip", bit=8)

    def test_bit_flip_is_deterministic(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"abcdef")
        corrupt_file(path, CorruptionSpec(kind="bit-flip", offset=2, bit=0))
        assert path.read_bytes() == b"ab" + bytes([ord("c") ^ 1]) + b"def"

    def test_truncate_tail(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"0123456789")
        corrupt_file(path, CorruptionSpec(kind="truncate", offset=-3))
        assert path.read_bytes() == b"0123456"

    def test_manifest_drop(self, corpus):
        corrupt_file(corpus, CorruptionSpec(kind="manifest-drop"))
        assert not manifest_path(corpus).exists()


class TestSingleByteDetection:
    """save → corrupt one byte anywhere → strict load raises IntegrityError."""

    def _probe_offsets(self, size, probes=24):
        step = max(1, size // probes)
        offsets = set(range(0, size, step))
        offsets.add(size - 1)
        return sorted(offsets)

    def test_flip_anywhere_in_data_file(self, corpus):
        pristine = corpus.read_bytes()
        for offset in self._probe_offsets(len(pristine)):
            corrupt_file(
                corpus, CorruptionSpec(kind="bit-flip", offset=offset, bit=5)
            )
            with pytest.raises(IntegrityError):
                load_samples(corpus)
            corpus.write_bytes(pristine)
        assert len(load_samples(corpus)) == 6  # restored corpus is clean

    def test_flip_every_byte_of_manifest(self, corpus):
        sidecar = manifest_path(corpus)
        pristine = sidecar.read_bytes()
        for offset in range(len(pristine)):
            corrupt_file(
                sidecar, CorruptionSpec(kind="bit-flip", offset=offset, bit=1)
            )
            with pytest.raises(IntegrityError):
                load_samples(corpus)
            sidecar.write_bytes(pristine)

    def test_truncation_detected(self, corpus):
        corrupt_file(corpus, CorruptionSpec(kind="truncate", offset=-5))
        with pytest.raises(IntegrityError):
            load_samples(corpus)

    def test_manifest_drop_detected_only_when_required(self, corpus):
        corrupt_file(corpus, CorruptionSpec(kind="manifest-drop"))
        assert len(load_samples(corpus)) == 6  # default: verify-if-present
        with pytest.raises(IntegrityError):
            load_samples(corpus, integrity="require")

    def test_integrity_skip_ignores_corruption_of_manifest(self, corpus):
        sidecar = manifest_path(corpus)
        corrupt_file(sidecar, CorruptionSpec(kind="bit-flip", offset=10))
        assert len(load_samples(corpus, integrity="skip")) == 6


def _generated_corpus(path, contexts, workers):
    framework = UCTR(
        UCTRConfig(
            program_kinds=("sql",), samples_per_context=4, seed=13
        )
    )
    framework.fit(contexts)
    generated = framework.generate(contexts, workers=workers)
    save_samples(path, generated)
    return generated


class TestGracefulDegradation:
    """Lenient loads of an N-record corpus with K corrupted lines."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_salvages_all_but_the_casualties(
        self, tmp_path, players_context, finance_context, workers
    ):
        path = tmp_path / f"gen-{workers}.jsonl"
        generated = _generated_corpus(
            path, [players_context, finance_context], workers
        )
        n = len(generated)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == n and n >= 4
        corrupted_at = [1, n // 2, n - 1]  # 0-based line indices
        for index in corrupted_at:
            lines[index] = lines[index][: len(lines[index]) // 2]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")

        result = load_samples(path, on_error="collect")
        assert isinstance(result, LoadResult)
        assert not result.clean
        assert len(result.records) == n - len(corrupted_at)
        line_rejects = [r for r in result.rejects if r.line_number > 0]
        assert [r.line_number for r in line_rejects] == [
            i + 1 for i in corrupted_at
        ]
        for reject in line_rejects:
            assert reject.path == str(path)
            assert reject.reason == "invalid_json"
            assert len(reject.digest) == 16
        # the manifest no longer matches: exactly one file-level reject
        integrity_rejects = [
            r for r in result.rejects if r.line_number == 0
        ]
        assert [r.reason for r in integrity_rejects] == ["integrity"]

        skipped = load_samples(path, on_error="skip")
        assert [s.uid for s in skipped] == [s.uid for s in result.records]

    def test_collect_on_clean_corpus_is_empty_handed(self, corpus):
        result = load_samples(corpus, on_error="collect")
        assert result.clean
        assert len(result) == 6
        assert list(result) == result.records

    def test_deserialization_failure_collected(self, tmp_path, samples):
        path = tmp_path / "typed.jsonl"
        save_samples(path, samples, manifest=False)
        lines = path.read_text().splitlines()
        record = json.loads(lines[2])
        del record["sentence"]
        lines[2] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        result = load_samples(path, on_error="collect")
        assert len(result.records) == 5
        (reject,) = result.rejects
        assert reject.line_number == 3
        assert reject.reason == "deserialization"

    def test_reject_record_round_trips(self):
        reject = RejectRecord.for_line("/x.jsonl", 4, "invalid_json", "{oops")
        assert RejectRecord.from_json(reject.to_json()) == reject


class TestLoadContract:
    """Satellite regressions: typed errors with file/line attribution."""

    def test_missing_field_names_file_and_line(self, tmp_path, samples):
        path = tmp_path / "typed.jsonl"
        save_samples(path, samples, manifest=False)
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        del record["uid"]
        lines[1] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(FileFormatError) as exc:
            load_samples(path)
        assert exc.value.line_number == 2
        assert str(path) in str(exc.value)
        assert ":2:" in str(exc.value)

    def test_context_missing_field_names_file_and_line(
        self, tmp_path, players_context
    ):
        path = tmp_path / "ctx.jsonl"
        save_contexts(path, [players_context], manifest=False)
        record = json.loads(path.read_text())
        del record["table"]
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(FileFormatError) as exc:
            load_contexts(path)
        assert exc.value.line_number == 1

    def test_read_jsonl_on_directory(self, tmp_path):
        with pytest.raises(FileFormatError, match="directory"):
            list(read_jsonl(tmp_path))

    def test_load_samples_on_directory(self, tmp_path):
        with pytest.raises(FileFormatError, match="directory"):
            load_samples(tmp_path)

    def test_integrity_errors_are_dataset_errors(self):
        assert issubclass(IntegrityError, DatasetError)

    def test_invalid_modes_rejected(self, corpus):
        with pytest.raises(ValueError):
            load_samples(corpus, on_error="explode")
        with pytest.raises(ValueError):
            load_samples(corpus, integrity="maybe")
