"""Unit tests for the Table-To-Text and Text-To-Table operators."""

import pytest

from repro.errors import OperatorError
from repro.operators import RecordExtractor, TableToText, TextToTable
from repro.tables import Table, TableContext
from repro.tables.context import Paragraph


class TestTableToText:
    def test_split_moves_highlighted_row(self, players_table, rng):
        operator = TableToText()
        highlighted = frozenset({(1, "points"), (1, "team")})
        split = operator.split(players_table, highlighted, rng)
        assert split.row_index == 1
        assert split.sub_table.n_rows == 4
        assert "mike jones" in split.sentence
        assert "22" in split.sentence  # the highlighted points cell

    def test_sentence_contains_highlighted_cells(self, players_table, rng):
        operator = TableToText()
        highlighted = frozenset({(3, "rebounds")})
        split = operator.split(players_table, highlighted, rng)
        assert "rebounds is 9" in split.sentence

    def test_requires_highlighted_cells(self, players_table, rng):
        with pytest.raises(OperatorError):
            TableToText().split(players_table, frozenset(), rng)

    def test_refuses_tiny_tables(self, rng):
        table = Table.from_rows(["a", "b"], [["x", "1"]])
        with pytest.raises(OperatorError):
            TableToText().split(table, frozenset({(0, "b")}), rng)

    def test_describe_row_skips_nulls(self, rng):
        table = Table.from_rows(
            ["name", "x", "y"],
            [["alpha", "n/a", "5"], ["beta", "2", "3"]],
            row_name_column="name",
        )
        sentence, described = TableToText().describe_row(table, 0, rng)
        assert "x" not in described
        assert "y is 5" in sentence

    def test_describe_row_too_sparse(self, rng):
        table = Table.from_rows(
            ["name", "x"],
            [["alpha", "n/a"], ["beta", "2"]],
            row_name_column="name",
        )
        with pytest.raises(OperatorError):
            TableToText().describe_row(table, 0, rng)


class TestRecordExtractor:
    def test_extracts_clauses(self):
        extractor = RecordExtractor(["player", "team", "points"])
        record = extractor.extract(
            "For dana cruz , the team is spurs and the points is 19 ."
        )
        assert record["team"].raw == "spurs"
        assert record["points"].as_number() == 19

    def test_leading_entity_recovery(self):
        extractor = RecordExtractor(["player", "team", "points"])
        record = extractor.extract_record(
            "For dana cruz , the team is spurs and the points is 19 .",
            name_column="player",
        )
        assert record["player"].raw == "dana cruz"

    def test_explicit_name_clause_wins(self):
        extractor = RecordExtractor(["player", "team"])
        record = extractor.extract_record(
            "the player is wes hall and the team is kings .",
            name_column="player",
        )
        assert record["player"].raw == "wes hall"

    def test_no_columns_rejected(self):
        with pytest.raises(OperatorError):
            RecordExtractor([])

    def test_unrelated_sentence_yields_nothing(self):
        extractor = RecordExtractor(["player", "team"])
        assert extractor.extract("The weather was nice today.") == {}


class TestTextToTable:
    def test_expand_integrates_record(self, players_context):
        result = TextToTable().expand(players_context)
        table = result.expanded_table
        assert table.n_rows == players_context.table.n_rows + 1
        assert result.row_name == "dana cruz"
        new_row = table.find_row_by_name("dana cruz")
        assert table.cell(new_row, "points").as_number() == 19

    def test_expand_skips_rows_already_present(self, players_context):
        """'john smith' is described in the text but already tabled."""
        result = TextToTable().expand(players_context)
        assert result.row_name != "john smith"

    def test_expand_without_text_fails(self, players_table):
        context = TableContext(table=players_table, uid="no-text")
        with pytest.raises(OperatorError):
            TextToTable().expand(context)

    def test_expand_unextractable_text_fails(self, players_table):
        context = TableContext(
            table=players_table,
            paragraphs=(Paragraph("Nothing tabular here at all."),),
        )
        with pytest.raises(OperatorError):
            TextToTable().expand(context)

    def test_expand_all_integrates_every_record(self, finance_context):
        expansion = TextToTable().expand_all(finance_context)
        assert expansion.n_new_rows >= 1
        table = expansion.expanded_table
        assert table.find_row_by_name("deferred revenue") is not None

    def test_expanded_table_retypes(self, players_context):
        result = TextToTable().expand(players_context)
        from repro.tables.values import ValueType

        assert result.expanded_table.column_type("points") is ValueType.NUMBER

    def test_min_cells_threshold(self, players_table):
        context = TableContext(
            table=players_table,
            paragraphs=(Paragraph("For pat lee , the team is suns ."),),
        )
        # only (name, team) extractable: below the default threshold of 2
        # non-name cells? name + team = 2 cells -> integrable
        operator = TextToTable(min_extracted_cells=3)
        with pytest.raises(OperatorError):
            operator.expand(context)
