"""End-to-end generation properties: emitted samples are self-consistent.

The strongest guarantees the pipelines can offer:

* every synthetic QA sample's gold answer is *reachable* from its own
  emitted context (the candidate generator can derive it), and
* every synthetic claim re-verifies: its recorded program still executes
  to the truth value its label asserts, on the table visible in the
  emitted sample or its provenance.
"""

import random

import pytest

from repro.datasets.synth import make_finance_context, make_wiki_context
from repro.eval.metrics import normalize_answer
from repro.models.qa import CandidateGenerator
from repro.pipelines import UCTR, UCTRConfig, TaskType
from repro.rng import make_rng


@pytest.fixture(scope="module", params=[3, 17])
def generated(request):
    seed = request.param
    rng = make_rng(seed)
    contexts = [
        make_wiki_context(rng, uid=f"p-wiki-{seed}-{i}") for i in range(3)
    ] + [
        make_finance_context(rng, uid=f"p-fin-{seed}-{i}") for i in range(3)
    ]
    framework = UCTR(
        UCTRConfig(
            program_kinds=("sql", "logic", "arith"),
            samples_per_context=10,
            seed=seed,
        )
    )
    framework.fit(contexts)
    return framework.generate(contexts)


class TestGeneratedSamples:
    def test_some_of_each_task(self, generated):
        tasks = {sample.task for sample in generated}
        assert TaskType.QUESTION_ANSWERING in tasks
        assert TaskType.FACT_VERIFICATION in tasks

    def test_qa_answers_reachable_from_context(self, generated):
        """The emitted evidence suffices to derive the gold answer."""
        generator = CandidateGenerator(max_candidates=300)
        qa = [s for s in generated if s.task is TaskType.QUESTION_ANSWERING]
        assert qa
        reachable = 0
        for sample in qa:
            gold = tuple(sorted(normalize_answer(a) for a in sample.answer))
            candidates = generator.generate(sample.sentence, sample.context)
            if any(c.key() == gold for c in candidates):
                reachable += 1
        # a modest floor: some answers are legitimately out of candidate
        # space (rare derivations), but the great majority must be in.
        assert reachable / len(qa) >= 0.65, f"{reachable}/{len(qa)}"

    def test_claims_recorded_programs_certify_labels(self, generated):
        from repro.programs.base import parse_program
        from repro.sampling.labeler import ClaimLabel

        claims = [
            s for s in generated if s.task is TaskType.FACT_VERIFICATION
        ]
        assert claims
        for sample in claims:
            source = sample.provenance.get("program")
            assert source, "claims must record their program"
            program = parse_program(source, "logic")
            # splitting/expansion change the visible table, so certify
            # against the emitted context only for table-only samples.
            if sample.provenance.get("pipeline") != "table_only":
                continue
            truth = program.execute(sample.context.table).truth
            assert truth is (sample.label is ClaimLabel.SUPPORTED)

    def test_sentences_are_clean(self, generated):
        for sample in generated:
            assert "{" not in sample.sentence
            assert "__result__" not in sample.sentence
            assert sample.sentence.strip()

    def test_uids_unique(self, generated):
        uids = [sample.uid for sample in generated]
        assert len(uids) == len(set(uids))

    def test_evidence_cells_in_range(self, generated):
        for sample in generated:
            for row, column in sample.evidence_cells:
                assert 0 <= row < sample.context.table.n_rows
                assert column in sample.context.table.schema
