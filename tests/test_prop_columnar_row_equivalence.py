"""Property tests: the columnar SQL engine ≡ the pre-refactor row path.

The columnar executor (default) and the row-oriented executor (kept for
one release behind ``REPRO_ROW_EXECUTOR=1``) must produce identical
:class:`ExecutionResult`s — values, ``highlighted_cells``, and raised
error types — over adversarial tables: mixed numeric surface forms
(currency, thousands separators, percent), both date syntaxes,
booleans, null conventions, and whitespace-y text, against every
operator, aggregate, DISTINCT, ORDER BY / LIMIT, ``*`` projection, and
arithmetic items the grammar supports.

The same suite pins the table-level columnar reroutes (``sort_by``,
``distinct_values``, ``column_values``, ``row_names``) to their naive
row-at-a-time definitions.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.programs.sql import parse_sql
from repro.programs.sql.executor import ROW_EXECUTOR_FLAG
from repro.tables.table import Table

_COLUMNS = ["name", "amount", "day", "flag"]

_names = st.sampled_from(
    ["alpha", "beta", "Gamma", " beta ", "delta airlines", "n/a", "-"]
)
_amounts = st.sampled_from(
    ["1,000", "1000", "$1,000", "500", "0.5", "12%", "-17", "+8",
     "€75", "n/a", "zz-top"]
)
_days = st.sampled_from(
    [
        "2020-01-05",
        "January 5, 2020",
        "2021-03-01",
        "March 1, 2021",
        "2020-02-29",
        "",
    ]
)
_flags = st.sampled_from(["true", "yes", "no", "false", "n/a"])


@st.composite
def tables(draw) -> Table:
    n_rows = draw(st.integers(min_value=0, max_value=9))
    rows = [
        [draw(_names), draw(_amounts), draw(_days), draw(_flags)]
        for _ in range(n_rows)
    ]
    return Table.from_rows(_COLUMNS, rows)


@st.composite
def queries(draw) -> str:
    kind = draw(st.sampled_from(
        [
            "eq", "neq", "ineq", "conj", "order", "star",
            "count_star", "count_col", "count_distinct",
            "agg", "arith",
        ]
    ))
    op = draw(st.sampled_from(["<", ">", "<=", ">="]))
    name = draw(_names).strip() or "alpha"
    amount = draw(st.sampled_from(["1000", "$1,000", "0.5", "-17", "500"]))
    day = draw(st.sampled_from(["2020-01-05", "January 5, 2020", "beta"]))
    column = draw(st.sampled_from(_COLUMNS))
    if kind == "eq":
        return f"select amount from w where {column} = '{name}'"
    if kind == "neq":
        return f"select name from w where {column} != '{day}'"
    if kind == "ineq":
        return f"select day from w where {column} {op} {amount}"
    if kind == "conj":
        return (
            f"select name from w where amount {op} {amount} "
            f"and flag = 'yes'"
        )
    if kind == "order":
        direction = draw(st.sampled_from(["asc", "desc"]))
        limit = draw(st.integers(min_value=1, max_value=4))
        return (
            f"select name from w order by {column} {direction} "
            f"limit {limit}"
        )
    if kind == "star":
        return f"select * from w where {column} {op} {amount}"
    if kind == "count_star":
        return f"select count ( * ) from w where {column} = '{name}'"
    if kind == "count_col":
        return f"select count ( {column} ) from w"
    if kind == "count_distinct":
        return f"select count ( distinct {column} ) from w"
    if kind == "agg":
        agg = draw(st.sampled_from(["sum", "avg", "min", "max"]))
        return f"select {agg} ( {column} ) from w where {column} {op} {amount}"
    return "select max ( amount ) - min ( amount ) from w"


def _columnar_outcome(table: Table, sql: str):
    os.environ.pop(ROW_EXECUTOR_FLAG, None)
    try:
        return ("ok", parse_sql(sql).execute(table))
    except Exception as error:  # compared by type below
        return ("error", type(error))


def _row_outcome(table: Table, sql: str):
    os.environ[ROW_EXECUTOR_FLAG] = "1"
    try:
        return ("ok", parse_sql(sql).execute(table))
    except Exception as error:
        return ("error", type(error))
    finally:
        os.environ.pop(ROW_EXECUTOR_FLAG, None)


@settings(max_examples=300, deadline=None)
@given(table=tables(), sql=queries())
def test_columnar_matches_row_executor(table: Table, sql: str):
    assert _columnar_outcome(table, sql) == _row_outcome(table, sql)


@settings(max_examples=150, deadline=None)
@given(table=tables(), sql=queries())
def test_row_flag_round_trips(table: Table, sql: str):
    """Toggling the flag back re-enables the columnar engine cleanly."""
    first = _columnar_outcome(table, sql)
    _row_outcome(table, sql)
    assert _columnar_outcome(table, sql) == first
    assert ROW_EXECUTOR_FLAG not in os.environ


@settings(max_examples=120, deadline=None)
@given(table=tables(), column=st.sampled_from(_COLUMNS),
       descending=st.booleans())
def test_sort_by_matches_naive(table: Table, column: str, descending: bool):
    fast = table.sort_by(column, descending=descending)
    index = table.schema.index(column)
    naive = sorted(
        table.rows, key=lambda row: row[index]._key(), reverse=descending
    )
    assert fast.rows == tuple(naive)
    assert fast.schema == table.schema


@settings(max_examples=120, deadline=None)
@given(table=tables(), column=st.sampled_from(_COLUMNS))
def test_distinct_and_column_values_match_naive(table: Table, column: str):
    index = table.schema.index(column)
    naive_values = [row[index] for row in table.rows]
    assert table.column_values(column) == naive_values

    seen: set[tuple] = set()
    naive_distinct = []
    for value in naive_values:
        if value.is_null:
            continue
        key = value.canonical_key()
        if key not in seen:
            seen.add(key)
            naive_distinct.append(value)
    assert table.distinct_values(column) == naive_distinct


@settings(max_examples=80, deadline=None)
@given(table=tables())
def test_row_names_match_per_row_accessor(table: Table):
    assert table.row_names() == [
        table.row_name(index) for index in range(table.n_rows)
    ]


def test_view_is_cached_and_not_inherited_by_derived_tables():
    table = Table.from_rows(
        ["a", "b"], [["1", "x"], ["2", "y"], ["3", "x"]]
    )
    view = table.columnar()
    assert table.columnar() is view  # memoized per instance
    trimmed = table.head(2)
    assert trimmed.columnar() is not view  # derived table = fresh cache
    assert len(trimmed.columnar().vector("a").cells) == 2


@pytest.mark.parametrize("sql", [
    "select missing from w",
    "select count ( missing ) from w",
    "select name from w where missing = 'x'",
    "select name from w order by missing asc",
])
def test_unknown_columns_raise_identically(sql: str):
    table = Table.from_rows(["name"], [["alpha"]])
    assert _columnar_outcome(table, sql) == _row_outcome(table, sql)
