"""Smoke tests: every experiment module runs at SMOKE scale.

These exercise the full harness path (data synthesis → UCTR generation
→ model training → metric computation → rendering) with tiny budgets;
the result *shapes* are asserted by the benchmark suite at full scale.
"""

import pytest

from repro.experiments import SMOKE
from repro.experiments.runner import REGISTRY, run_all


@pytest.fixture(scope="module")
def all_results():
    return run_all(SMOKE)


def test_registry_covers_every_paper_artifact():
    for experiment in ("table2", "table3", "table4", "table5", "table6",
                       "table7", "table8", "table9", "figure1", "figure5"):
        assert experiment in REGISTRY


def test_all_experiments_run(all_results):
    assert set(all_results) == set(REGISTRY)


def test_results_render(all_results):
    for name, result in all_results.items():
        text = result.render()
        assert result.title in text
        for column in result.columns:
            assert column in text, (name, column)


def test_rows_have_all_columns(all_results):
    for name, result in all_results.items():
        for row in result.rows:
            for column in result.columns:
                assert column in row, (name, column)


def test_table3_has_eight_rows(all_results):
    assert len(all_results["table3"].rows) == 8


def test_table8_settings_ordered(all_results):
    settings = [row["Setting"] for row in all_results["table8"].rows]
    assert settings == sorted(settings)


def test_figure5_budgets_monotone(all_results):
    budgets = [row["Labeled Samples"] for row in all_results["figure5"].rows]
    assert budgets == sorted(budgets)


def test_cell_lookup_api(all_results):
    result = all_results["table4"]
    value = result.cell("UCTR", "Dev Accuracy")
    assert isinstance(value, float)
    with pytest.raises(KeyError):
        result.cell("Nonexistent Model", "Dev Accuracy")


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        run_all(SMOKE, only=["not_a_real_experiment"])
