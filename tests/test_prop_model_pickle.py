"""Property tests: pickling a trained model never changes a prediction.

The serving stack leans on pickle twice — the registry persists models
as pickle artifacts, and the engine unpickles an independent replica
per worker thread.  Both are only sound if a round-tripped model is
*behaviorally* identical to the original on any input, not just on the
training distribution.  These tests fuzz question/claim surface forms
(known and unknown entities, numbers, casing) against session-trained
models and require exactly equal predictions from the clone.
"""

from __future__ import annotations

import pickle

from hypothesis import given, settings, strategies as st

from repro.pipelines.samples import ReasoningSample, TaskType
from repro.sampling.labeler import ClaimLabel

_names = st.sampled_from(
    ["john smith", "bo chen", "dana cruz", "nobody special", "BO CHEN"]
)
_columns = st.sampled_from(["points", "rebounds", "team", "salary"])
_values = st.sampled_from(["31", "28", "7", "999999", "hawks", "0"])
_templates = st.sampled_from(
    [
        "what is the {column} of {name} ?",
        "how many {column} does {name} have ?",
        "which player has the highest {column} ?",
    ]
)


@st.composite
def _questions(draw):
    template = draw(_templates)
    return template.format(column=draw(_columns), name=draw(_names))


@st.composite
def _claims(draw):
    return (
        f"{draw(_names)} has a {draw(_columns)} of {draw(_values)}"
    )


@settings(max_examples=40, deadline=None)
@given(question=_questions())
def test_qa_round_trip_predictions_identical(
    tiny_qa_model, serve_context, question
):
    clone = pickle.loads(pickle.dumps(tiny_qa_model))
    sample = ReasoningSample(
        uid="prop-qa",
        task=TaskType.QUESTION_ANSWERING,
        context=serve_context,
        sentence=question,
        answer=("",),
    )
    assert clone.predict(sample) == tiny_qa_model.predict(sample)


@settings(max_examples=40, deadline=None)
@given(claims=st.lists(_claims(), min_size=1, max_size=6))
def test_verifier_round_trip_predictions_identical(
    tiny_verifier, serve_context, claims
):
    clone = pickle.loads(pickle.dumps(tiny_verifier))
    samples = [
        ReasoningSample(
            uid=f"prop-v-{i}",
            task=TaskType.FACT_VERIFICATION,
            context=serve_context,
            sentence=claim,
            label=ClaimLabel.UNKNOWN,
        )
        for i, claim in enumerate(claims)
    ]
    assert clone.predict(samples) == tiny_verifier.predict(samples)
