"""Tests for the error-analysis breakdowns and the TABFACT stand-in."""

import pytest

from repro.datasets import TabFactConfig, make_tabfact
from repro.eval.analysis import Breakdown, GroupScore, qa_breakdown, verifier_breakdown
from repro.pipelines.samples import EvidenceType, ReasoningSample, TaskType
from repro.sampling.labeler import ClaimLabel


class _ConstantVerifier:
    def predict(self, samples):
        return [ClaimLabel.SUPPORTED for _ in samples]


class _EchoQA:
    """Predicts the gold answer for even uids, junk otherwise."""

    def predict(self, sample):
        if int(sample.uid.rsplit("-", 1)[-1]) % 2 == 0:
            return tuple(sample.answer)
        return ("wrong",)


def _claim(context, i, label, category):
    return ReasoningSample(
        uid=f"c-{i}",
        task=TaskType.FACT_VERIFICATION,
        context=context,
        sentence=f"claim {i}",
        label=label,
        provenance={"category": category},
    )


def _question(context, i, evidence):
    return ReasoningSample(
        uid=f"q-{i}",
        task=TaskType.QUESTION_ANSWERING,
        context=context,
        sentence=f"question {i} ?",
        answer=(str(i),),
        evidence_type=evidence,
    )


class TestVerifierBreakdown:
    def test_groups_by_category(self, players_context):
        samples = [
            _claim(players_context, 0, ClaimLabel.SUPPORTED, "lookup"),
            _claim(players_context, 1, ClaimLabel.REFUTED, "lookup"),
            _claim(players_context, 2, ClaimLabel.SUPPORTED, "count"),
        ]
        breakdown = verifier_breakdown(_ConstantVerifier(), samples)
        assert breakdown.group("lookup").score == 50.0
        assert breakdown.group("count").score == 100.0
        assert breakdown.overall == pytest.approx(200 / 3)

    def test_best_and_worst(self, players_context):
        samples = [
            _claim(players_context, 0, ClaimLabel.SUPPORTED, "a"),
            _claim(players_context, 1, ClaimLabel.REFUTED, "b"),
        ]
        breakdown = verifier_breakdown(_ConstantVerifier(), samples)
        assert breakdown.best().group == "a"
        assert breakdown.worst().group == "b"

    def test_empty(self):
        assert verifier_breakdown(_ConstantVerifier(), []).overall == 0.0

    def test_unknown_group_raises(self, players_context):
        breakdown = verifier_breakdown(
            _ConstantVerifier(),
            [_claim(players_context, 0, ClaimLabel.SUPPORTED, "a")],
        )
        with pytest.raises(KeyError):
            breakdown.group("nope")


class TestQABreakdown:
    def test_groups_by_evidence(self, players_context):
        samples = [
            _question(players_context, 0, EvidenceType.TABLE),
            _question(players_context, 1, EvidenceType.TABLE),
            _question(players_context, 2, EvidenceType.TEXT),
        ]
        breakdown = qa_breakdown(_EchoQA(), samples, by="evidence")
        assert breakdown.group("table").score == 50.0
        assert breakdown.group("text").score == 100.0

    def test_invalid_grouping(self, players_context):
        with pytest.raises(ValueError):
            qa_breakdown(
                _EchoQA(),
                [_question(players_context, 0, EvidenceType.TABLE)],
                by="phase_of_moon",
            )


class TestTabFact:
    @pytest.fixture(scope="class")
    def tabfact(self):
        return make_tabfact(TabFactConfig(train_contexts=15))

    def test_single_train_split(self, tabfact):
        assert set(tabfact.splits) == {"train"}

    def test_table_only_two_way(self, tabfact):
        labels = set()
        for sample in tabfact.train.gold:
            assert sample.evidence_type is EvidenceType.TABLE
            labels.add(sample.label)
        assert labels == {ClaimLabel.SUPPORTED, ClaimLabel.REFUTED}

    def test_no_text(self, tabfact):
        for context in tabfact.train.contexts:
            assert not context.has_text

    def test_trains_a_transfer_verifier(self, tabfact):
        from repro.models.baselines import transfer_verifier

        model = transfer_verifier(list(tabfact.train.gold), three_way=True)
        assert ClaimLabel.UNKNOWN in model.labels
