"""Tests for the numpy MLP, featurizers, and downstream models."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.models import (
    CandidateGenerator,
    FactVerifier,
    MLP,
    MLPConfig,
    QAConfig,
    RandomVerifier,
    TagOpQA,
    VerificationFeaturizer,
    VerifierConfig,
    extract_numbers,
    tokenize,
)
from repro.models.baselines import MajorityVerifier
from repro.pipelines.samples import ReasoningSample, TaskType
from repro.sampling.labeler import ClaimLabel


class TestMLP:
    def _xor_data(self, n=400, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.uniform(-1, 1, size=(n, 2))
        y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(np.int64)
        return x, y

    def test_learns_xor(self):
        x, y = self._xor_data()
        mlp = MLP(MLPConfig(input_dim=2, hidden_dims=(16,), n_classes=2,
                            epochs=200, learning_rate=5e-3, patience=50))
        mlp.fit(x, y)
        accuracy = (mlp.predict(x) == y).mean()
        assert accuracy > 0.9

    def test_predict_proba_normalized(self):
        x, y = self._xor_data(50)
        mlp = MLP(MLPConfig(input_dim=2, n_classes=2, epochs=2))
        mlp.fit(x, y)
        proba = mlp.predict_proba(x)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all()

    def test_scores_requires_binary(self):
        mlp = MLP(MLPConfig(input_dim=2, n_classes=3))
        with pytest.raises(ModelError):
            mlp.scores(np.zeros((1, 2)))

    def test_wrong_width_rejected(self):
        mlp = MLP(MLPConfig(input_dim=4))
        with pytest.raises(ModelError):
            mlp.fit(np.zeros((5, 3)), np.zeros(5, dtype=np.int64))

    def test_empty_data_rejected(self):
        mlp = MLP(MLPConfig(input_dim=2))
        with pytest.raises(ModelError):
            mlp.fit(np.zeros((0, 2)), np.zeros(0, dtype=np.int64))

    def test_clone_decouples_weights(self):
        x, y = self._xor_data(100)
        mlp = MLP(MLPConfig(input_dim=2, epochs=2))
        mlp.fit(x, y)
        twin = mlp.clone()
        twin.weights[0][:] = 0.0
        assert not np.allclose(mlp.weights[0], 0.0)

    def test_deterministic(self):
        x, y = self._xor_data(100)
        a = MLP(MLPConfig(input_dim=2, epochs=5, seed=4)).fit(x, y)
        b = MLP(MLPConfig(input_dim=2, epochs=5, seed=4)).fit(x, y)
        assert np.allclose(a.weights[0], b.weights[0])


class TestTextUtils:
    def test_tokenize(self):
        assert tokenize("John Smith's 31 points!") == [
            "john", "smith's", "31", "points"
        ]

    def test_extract_numbers(self):
        assert extract_numbers("revenue grew from $1,200 to 1,500") == [
            1200.0, 1500.0
        ]

    def test_extract_numbers_skips_embedded(self):
        assert extract_numbers("sample p1 and compound b2") == []


def _claim(context, sentence, label=ClaimLabel.SUPPORTED):
    return ReasoningSample(
        uid=f"c-{abs(hash(sentence)) % 10**6}",
        task=TaskType.FACT_VERIFICATION,
        context=context,
        sentence=sentence,
        label=label,
    )


class TestVerificationFeaturizer:
    def test_dimension_contract(self, players_context):
        featurizer = VerificationFeaturizer()
        features = featurizer.features(
            _claim(players_context, "john smith has a points of 31")
        )
        assert features.shape == (featurizer.dim,)

    def _dense(self, featurizer, context, sentence):
        features = featurizer.featurize(sentence, context)
        names = featurizer.DENSE_FEATURES
        return dict(zip(names, features[: len(names)]))

    def test_lookup_consistency(self, players_context):
        featurizer = VerificationFeaturizer()
        good = self._dense(
            featurizer, players_context, "john smith has a points of 31"
        )
        bad = self._dense(
            featurizer, players_context, "john smith has a points of 99"
        )
        assert good["lookup_consistent"] == 1.0
        assert bad["lookup_inconsistent"] == 1.0

    def test_text_record_lookup(self, players_context):
        """Values asserted only in the text are still checkable."""
        featurizer = VerificationFeaturizer()
        good = self._dense(
            featurizer, players_context, "dana cruz has a points of 19"
        )
        assert good["row_match"] == 1.0
        assert good["lookup_consistent"] == 1.0

    def test_superlative_signals(self, players_context):
        featurizer = VerificationFeaturizer()
        good = self._dense(
            featurizer, players_context, "john smith has the highest points"
        )
        bad = self._dense(
            featurizer, players_context, "raj patel has the highest points"
        )
        assert good["sup_max_consistent"] == 1.0
        assert bad["sup_max_inconsistent"] == 1.0

    def test_count_signals(self, players_context):
        featurizer = VerificationFeaturizer()
        good = self._dense(
            featurizer, players_context,
            "hawks appears 2 times in the team column",
        )
        assert good["count_match"] == 1.0

    def test_comparative_signals(self, players_context):
        featurizer = VerificationFeaturizer()
        good = self._dense(
            featurizer, players_context,
            "john smith has a higher points than raj patel",
        )
        bad = self._dense(
            featurizer, players_context,
            "raj patel has a higher points than john smith",
        )
        assert good["comp_consistent"] == 1.0
        assert bad["comp_inconsistent"] == 1.0

    def test_aggregation_signals(self, players_context):
        featurizer = VerificationFeaturizer()
        good = self._dense(
            featurizer, players_context, "the total points is 110"
        )
        assert good["agg_sum_match"] == 1.0

    def test_unknown_entity_signal(self, players_context):
        featurizer = VerificationFeaturizer()
        unknown = self._dense(
            featurizer, players_context,
            "zyx warbler recorded a points of 50",
        )
        known = self._dense(
            featurizer, players_context, "john smith recorded a points of 31"
        )
        assert unknown["unknown_entity"] > known["unknown_entity"]


class TestFactVerifier:
    @pytest.fixture
    def trained(self, players_context, finance_context):
        samples = []
        for context in (players_context, finance_context):
            table = context.table
            name_col = table.row_name_column
            for row in range(table.n_rows):
                name = table.row_name(row)
                for column in table.numeric_column_names():
                    cell = table.cell(row, column)
                    if cell.is_null:
                        continue
                    value = cell.raw
                    samples.append(_claim(
                        context, f"{name} has a {column} of {value}",
                        ClaimLabel.SUPPORTED,
                    ))
                    wrong = str(float(cell.as_number()) + 500)
                    samples.append(_claim(
                        context, f"{name} has a {column} of {wrong}",
                        ClaimLabel.REFUTED,
                    ))
        verifier = FactVerifier(VerifierConfig(epochs=30))
        verifier.fit(samples)
        return verifier

    def test_learns_lookup_claims(self, trained, players_context):
        predictions = trained.predict([
            _claim(players_context, "bo chen has a rebounds of 9"),
            _claim(players_context, "bo chen has a rebounds of 900"),
        ])
        assert predictions[0] is ClaimLabel.SUPPORTED
        assert predictions[1] is ClaimLabel.REFUTED

    def test_accuracy_helper(self, trained, players_context):
        samples = [
            _claim(players_context, "bo chen has a rebounds of 9",
                   ClaimLabel.SUPPORTED),
        ]
        assert 0.0 <= trained.accuracy(samples) <= 1.0

    def test_three_way_labels(self):
        verifier = FactVerifier(VerifierConfig(three_way=True))
        assert ClaimLabel.UNKNOWN in verifier.labels

    def test_no_usable_samples(self, players_context):
        verifier = FactVerifier()
        with pytest.raises(ModelError):
            verifier.fit([
                _claim(players_context, "x", ClaimLabel.UNKNOWN)
            ])  # unknown not trainable in 2-way mode


class TestCandidateGenerator:
    def test_cell_candidates(self, players_context):
        generator = CandidateGenerator()
        candidates = generator.generate(
            "what is the points of bo chen ?", players_context
        )
        answers = {c.answer for c in candidates}
        assert ("28",) in answers

    def test_text_candidates(self, players_context):
        generator = CandidateGenerator()
        candidates = generator.generate(
            "what is the points of dana cruz ?", players_context
        )
        text_answers = {
            c.answer for c in candidates if c.source == "text"
        }
        assert ("19",) in text_answers

    def test_aggregate_candidates(self, players_context):
        generator = CandidateGenerator()
        candidates = generator.generate(
            "what is the total points ?", players_context
        )
        answers = {c.answer for c in candidates}
        assert ("110",) in answers  # table-only sum

    def test_pair_candidates(self, players_context):
        generator = CandidateGenerator()
        candidates = generator.generate(
            "what is the difference in points between john smith and "
            "raj patel ?",
            players_context,
        )
        answers = {c.answer for c in candidates if c.type == "diff_pair"}
        assert ("19",) in answers

    def test_source_restriction(self, players_context):
        table_only = CandidateGenerator(answer_source="table")
        for candidate in table_only.generate("points of dana cruz", players_context):
            assert candidate.source == "table"

    def test_count_candidates(self, players_context):
        generator = CandidateGenerator()
        candidates = generator.generate(
            "how many players are on the hawks ?", players_context
        )
        count_answers = {
            c.answer for c in candidates if c.type == "count_eq"
        }
        assert ("2",) in count_answers


class TestTagOpQA:
    def _questions(self, context):
        table = context.table
        samples = []
        for row in range(table.n_rows):
            name = table.row_name(row)
            for column in table.numeric_column_names():
                cell = table.cell(row, column)
                samples.append(ReasoningSample(
                    uid=f"q-{row}-{column}",
                    task=TaskType.QUESTION_ANSWERING,
                    context=context,
                    sentence=f"what is the {column} of {name} ?",
                    answer=(cell.raw,),
                ))
        return samples

    def test_learns_lookup_questions(self, players_context):
        samples = self._questions(players_context)
        model = TagOpQA(QAConfig(epochs=20))
        model.fit(samples)
        correct = sum(
            1 for sample in samples
            if model.predict(sample) == sample.answer
        )
        assert correct / len(samples) > 0.6

    def test_untrained_fallback_runs(self, players_context):
        model = TagOpQA()
        answer = model.predict(self._questions(players_context)[0])
        assert isinstance(answer, tuple)

    def test_predict_batch(self, players_context):
        samples = self._questions(players_context)[:3]
        model = TagOpQA(QAConfig(epochs=5))
        model.fit(self._questions(players_context))
        assert len(model.predict_batch(samples)) == 3


class TestBaselines:
    def test_random_verifier_range(self, players_context):
        samples = [
            _claim(players_context, f"claim {i}",
                   ClaimLabel.SUPPORTED if i % 2 else ClaimLabel.REFUTED)
            for i in range(50)
        ]
        accuracy = RandomVerifier(seed=1).accuracy(samples)
        assert 0.2 <= accuracy <= 0.8

    def test_majority_verifier(self, players_context):
        samples = [
            _claim(players_context, f"claim {i}", ClaimLabel.REFUTED)
            for i in range(10)
        ]
        model = MajorityVerifier().fit(samples)
        assert model.accuracy(samples) == 1.0
