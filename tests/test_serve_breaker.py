"""Unit tests for the circuit breaker and the hedging policy.

Pure state-machine tests: the breaker takes an injectable clock, so
every transition is exercised without sleeping.
"""

import pytest

from repro.serve.breaker import CircuitBreaker
from repro.serve.hedge import HedgePolicy

pytestmark = pytest.mark.timeout(30)


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(threshold=3, cooldown_s=1.0, clock=clock)


class TestClosed:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_success_resets_failure_streak(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        # 2 + 2 failures but never 3 consecutive: still closed
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_threshold_consecutive_failures_trip(self, breaker):
        for _ in range(3):
            assert breaker.state == CircuitBreaker.CLOSED
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.stats()["trips"] == 1

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)


class TestOpen:
    def _trip(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN

    def test_open_refuses_until_cooldown(self, breaker, clock):
        self._trip(breaker)
        clock.advance(0.99)
        assert not breaker.allow()
        clock.advance(0.02)
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_straggler_failures_do_not_extend_cooldown(
        self, breaker, clock
    ):
        self._trip(breaker)
        clock.advance(0.5)
        breaker.record_failure()  # in-flight from before the trip
        clock.advance(0.6)  # 1.1s after the *trip*
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_success_while_open_recloses(self, breaker, clock):
        # an in-flight request from before the trip completing fine is
        # proof of life — re-admit immediately.
        self._trip(breaker)
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()
        assert breaker.stats()["reclosures"] == 1


class TestHalfOpen:
    def _half_open(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.01)
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_one_probe_per_interval(self, breaker, clock):
        self._half_open(breaker, clock)
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # throttled
        clock.advance(1.01)  # probe_interval_s == cooldown_s here
        assert breaker.allow()
        assert breaker.stats()["probes_fired"] == 2

    def test_probe_success_closes(self, breaker, clock):
        self._half_open(breaker, clock)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow() and breaker.allow()  # no throttle anymore

    def test_probe_failure_reopens(self, breaker, clock):
        self._half_open(breaker, clock)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.stats()["trips"] == 2
        # and the cooldown restarted from the re-trip
        clock.advance(1.01)
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_unreported_probe_ages_out(self, clock):
        # a probe whose outcome is never reported (hedge loser whose
        # reply was forgotten) must not wedge the breaker: admission is
        # time-throttled, not in-flight-counted.
        breaker = CircuitBreaker(
            threshold=1, cooldown_s=1.0, probes=4, clock=clock
        )
        breaker.record_failure()
        clock.advance(1.01)
        assert breaker.allow()  # probe fired, outcome never reported
        assert not breaker.allow()
        clock.advance(0.26)  # probe_interval_s = 1.0 / 4
        assert breaker.allow()

    def test_reset_force_closes(self, breaker, clock):
        self._half_open(breaker, clock)
        breaker.reset()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.stats()["consecutive_failures"] == 0


class TestHedgePolicy:
    def test_cold_window_uses_ceiling(self):
        policy = HedgePolicy()
        assert policy.delay_s([]) == policy.ceiling_s

    def test_p95_of_window(self):
        policy = HedgePolicy(floor_s=0.0, ceiling_s=10.0)
        # nearest-rank p95 of 100 values is sorted index 94
        assert policy.delay_s([0.1] * 90 + [1.0] * 10) == pytest.approx(1.0)
        assert policy.delay_s([0.1] * 95 + [1.0] * 5) == pytest.approx(0.1)

    def test_clamped_to_floor_and_ceiling(self):
        policy = HedgePolicy(floor_s=0.05, ceiling_s=2.0)
        assert policy.delay_s([0.001] * 100) == 0.05
        assert policy.delay_s([30.0] * 100) == 2.0
