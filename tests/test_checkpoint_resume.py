"""Checkpoint/resume: crash-safe persistence and byte-identical replay.

The acceptance criterion from the runtime design: a run interrupted at
any point — cooperative (SIGINT) or violent (SIGKILL of the whole
process) — resumes from its checkpoint directory and produces output
byte-identical to an uninterrupted run, minus only contexts that were
quarantined.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import CheckpointError
from repro.io import save_contexts
from repro.pipelines import UCTR, UCTRConfig
from repro.runtime import (
    CheckpointManager,
    QuarantineRecord,
    RetryPolicy,
    load_checkpoint,
    run_fingerprint,
)
from repro.runtime.checkpoint import (
    CHECKPOINT_KIND,
    MANIFEST_NAME,
    RESULTS_NAME,
)
from repro.runtime.faults import FAULTS_ENV, FaultPlan, FaultSpec, injected
from repro.tables import Paragraph, Table, TableContext


def _context(i: int) -> TableContext:
    table = Table.from_rows(
        header=["player", "team", "points"],
        raw_rows=[
            [f"p{i}{j}", f"team{j % 3}", str(10 + 3 * j + i)]
            for j in range(5)
        ],
        title=f"stats {i}",
        row_name_column="player",
    )
    text = f"For newcomer{i} , the team is team9 and the points is {20 + i} ."
    return TableContext(
        table=table, uid=f"ctx{i}", paragraphs=(Paragraph(text=text),)
    )


def _fingerprint(samples):
    return json.dumps([s.to_json() for s in samples], sort_keys=True)


@pytest.fixture(scope="module")
def contexts():
    return [_context(i) for i in range(6)]


@pytest.fixture(scope="module")
def framework(contexts):
    framework = UCTR(
        UCTRConfig(program_kinds=("sql",), samples_per_context=4, seed=7)
    )
    return framework.fit(contexts)


@pytest.fixture(scope="module")
def baseline(framework, contexts):
    return framework.generate(contexts, workers=1)


class TestCheckpointManager:
    def _manager(self, tmp_path, fingerprint="fp", total=4, every=1):
        return CheckpointManager(
            tmp_path / "ckpt", fingerprint=fingerprint, total=total,
            every=every,
        )

    def test_record_load_round_trip(self, tmp_path, baseline):
        manager = self._manager(tmp_path).open()
        per_context = baseline[:2]
        manager.record(0, per_context)
        manager.record(3, [])
        manager.finalize(partial=False)
        data = load_checkpoint(tmp_path / "ckpt")
        assert data.fingerprint == "fp"
        assert data.total == 4
        assert data.complete is True
        assert sorted(data.completed) == [0, 3]
        assert _fingerprint(data.completed[0]) == _fingerprint(per_context)

    def test_duplicate_record_ignored(self, tmp_path, baseline):
        manager = self._manager(tmp_path).open()
        manager.record(0, baseline[:1])
        manager.record(0, baseline[:2])  # already recorded: dropped
        manager.finalize(partial=False)
        data = load_checkpoint(tmp_path / "ckpt")
        assert len(data.completed[0]) == 1

    def test_partial_finalize_not_complete(self, tmp_path):
        manager = self._manager(tmp_path).open()
        manager.record(1, [])
        manager.finalize(partial=True)
        assert load_checkpoint(tmp_path / "ckpt").complete is False

    def test_quarantine_carried_in_manifest(self, tmp_path):
        manager = self._manager(tmp_path).open()
        record = QuarantineRecord(
            index=2, uid="ctx2", reason="worker_death", attempts=3,
            stage="parent",
        )
        manager.quarantine(record)
        manager.finalize(partial=True)
        data = load_checkpoint(tmp_path / "ckpt")
        assert data.quarantined == [record]
        assert data.quarantined_indices == {2}

    def test_fingerprint_mismatch_refused(self, tmp_path):
        manager = self._manager(tmp_path, fingerprint="aaa").open()
        manager.finalize(partial=True)
        loaded = load_checkpoint(tmp_path / "ckpt")
        fresh = self._manager(tmp_path, fingerprint="bbb")
        with pytest.raises(CheckpointError, match="fingerprint"):
            fresh.open(seed_from=loaded)

    def test_fresh_open_discards_stale_results(self, tmp_path, baseline):
        manager = self._manager(tmp_path).open()
        manager.record(0, baseline[:1])
        manager.finalize(partial=True)
        self._manager(tmp_path).open().finalize(partial=True)
        assert load_checkpoint(tmp_path / "ckpt").completed == {}

    def test_torn_final_line_tolerated(self, tmp_path, baseline):
        manager = self._manager(tmp_path).open()
        manager.record(0, baseline[:1])
        manager.record(1, baseline[1:2])
        manager.finalize(partial=True)
        results = tmp_path / "ckpt" / RESULTS_NAME
        with results.open("a", encoding="utf-8") as handle:
            handle.write('{"index": 2, "samples": [{"tr')  # mid-write kill
        data = load_checkpoint(tmp_path / "ckpt")
        assert sorted(data.completed) == [0, 1]

    def test_corrupt_interior_line_rejected(self, tmp_path, baseline):
        manager = self._manager(tmp_path).open()
        manager.record(0, baseline[:1])
        manager.finalize(partial=True)
        results = tmp_path / "ckpt" / RESULTS_NAME
        good = results.read_text(encoding="utf-8")
        results.write_text("not json\n" + good, encoding="utf-8")
        with pytest.raises(CheckpointError, match=":1:"):
            load_checkpoint(tmp_path / "ckpt")

    def test_no_temp_files_left_behind(self, tmp_path, baseline):
        manager = self._manager(tmp_path).open()
        manager.record(0, baseline[:1])
        manager.finalize(partial=False)
        leftovers = list((tmp_path / "ckpt").glob("*.tmp"))
        assert leftovers == []


class TestLoadErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(tmp_path)

    def test_corrupt_manifest(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{nope", encoding="utf-8")
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(tmp_path)

    def test_wrong_kind(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps({"kind": "something-else", "schema_version": 1}),
            encoding="utf-8",
        )
        with pytest.raises(CheckpointError, match=CHECKPOINT_KIND):
            load_checkpoint(tmp_path)

    def test_wrong_schema_version(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps({"kind": CHECKPOINT_KIND, "schema_version": 999}),
            encoding="utf-8",
        )
        with pytest.raises(CheckpointError, match="schema_version"):
            load_checkpoint(tmp_path)


class TestGenerateWithCheckpoint:
    def test_full_run_writes_complete_checkpoint(
        self, framework, contexts, baseline, tmp_path
    ):
        samples = framework.generate(
            contexts, workers=1, checkpoint_dir=tmp_path / "ckpt",
            checkpoint_every=2,
        )
        assert _fingerprint(samples) == _fingerprint(baseline)
        data = load_checkpoint(tmp_path / "ckpt")
        assert data.complete is True
        assert sorted(data.completed) == list(range(len(contexts)))
        state = framework.generation_state()
        assert data.fingerprint == run_fingerprint(state, contexts)

    def test_resume_from_complete_run_is_identical(
        self, framework, contexts, baseline, tmp_path
    ):
        framework.generate(
            contexts, workers=1, checkpoint_dir=tmp_path / "ckpt"
        )
        resumed = framework.generate(
            contexts, workers=1, resume_from=tmp_path / "ckpt",
            checkpoint_dir=tmp_path / "ckpt",
        )
        assert _fingerprint(resumed) == _fingerprint(baseline)

    def test_resume_against_different_contexts_refused(
        self, framework, contexts, tmp_path
    ):
        framework.generate(
            contexts, workers=1, checkpoint_dir=tmp_path / "ckpt"
        )
        with pytest.raises(CheckpointError, match="different run"):
            framework.generate(
                contexts[:-1], workers=1, resume_from=tmp_path / "ckpt"
            )

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_interrupted_run_resumes_byte_identically(
        self, framework, contexts, baseline, tmp_path, workers
    ):
        """Satellite (d): faulted + resumed == uninterrupted, per worker
        count."""
        ckpt = tmp_path / f"ckpt-w{workers}"
        sentinel = str(tmp_path / f"interrupt-w{workers}")
        plan = FaultPlan({
            3: FaultSpec(kind="interrupt", once_path=sentinel)
        })
        with injected(plan):
            with pytest.raises(KeyboardInterrupt):
                framework.generate(
                    contexts, workers=workers, checkpoint_dir=ckpt,
                    checkpoint_every=1,
                    retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
                )
            data = load_checkpoint(ckpt)
            assert data.complete is False
            assert len(data.completed) < len(contexts)
            # the sentinel is claimed: the resumed run passes clean
            resumed = framework.generate(
                contexts, workers=workers, resume_from=ckpt,
                checkpoint_dir=ckpt,
            )
        assert _fingerprint(resumed) == _fingerprint(baseline)
        assert load_checkpoint(ckpt).complete is True

    def test_resume_keeps_quarantined_contexts_quarantined(
        self, framework, contexts, baseline, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        with injected(FaultPlan({2: FaultSpec(kind="raise")})):
            framework.generate(
                contexts, workers=1, checkpoint_dir=ckpt,
                retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
            )
        # resume with no faults installed: ctx2 must NOT be regenerated
        resumed = framework.generate(
            contexts, workers=1, resume_from=ckpt, checkpoint_dir=ckpt,
        )
        expected = [s for s in baseline if not s.uid.startswith("ctx2-")]
        assert _fingerprint(resumed) == _fingerprint(expected)
        events = framework.last_telemetry.events("quarantine")
        assert [e["index"] for e in events] == [2]


class TestKillDashNine:
    def test_sigkilled_cli_run_resumes_byte_identically(
        self, framework, contexts, baseline, tmp_path
    ):
        """The acceptance test: SIGKILL mid-run, resume, same bytes."""
        contexts_path = tmp_path / "ctx.jsonl"
        save_contexts(contexts_path, contexts)
        ckpt = tmp_path / "ckpt"
        out = tmp_path / "synth.jsonl"
        argv = [
            sys.executable, "-m", "repro.cli", "generate",
            str(contexts_path), "--out", str(out),
            "--kinds", "sql", "--per-context", "4", "--seed", "7",
            "--checkpoint-dir", str(ckpt), "--checkpoint-every", "1",
        ]
        # slow every context down so the kill lands mid-run
        plan = FaultPlan({
            i: FaultSpec(kind="slow", seconds=0.3)
            for i in range(len(contexts))
        })
        env = dict(os.environ)
        env[FAULTS_ENV] = json.dumps(plan.to_json(), sort_keys=True)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parent.parent / "src"
        )
        process = subprocess.Popen(
            argv, env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            results = ckpt / RESULTS_NAME
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if process.poll() is not None:
                    break  # finished before we could kill it
                if results.exists() and len(
                    results.read_text(encoding="utf-8").splitlines()
                ) >= 2:
                    break
                time.sleep(0.05)
            if process.poll() is None:
                process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:  # pragma: no cover - safety net
                process.kill()
                process.wait()
        # some progress must have been persisted before the kill
        data = load_checkpoint(ckpt)
        assert data.completed
        # resume in-process (no faults) and compare bytes
        from repro.cli import main as cli_main

        code = cli_main([
            "generate", str(contexts_path), "--out", str(out),
            "--kinds", "sql", "--per-context", "4", "--seed", "7",
            "--checkpoint-dir", str(ckpt), "--resume",
        ])
        assert code == 0
        clean = tmp_path / "clean.jsonl"
        assert cli_main([
            "generate", str(contexts_path), "--out", str(clean),
            "--kinds", "sql", "--per-context", "4", "--seed", "7",
        ]) == 0
        assert out.read_text(encoding="utf-8") == clean.read_text(
            encoding="utf-8"
        )
