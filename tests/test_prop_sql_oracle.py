"""Property tests: our SQL engine against the sqlite3 oracle.

The paper's executor *is* sqlite3; ours must agree with it on the
template query space.  Hypothesis generates random tables and queries
from the supported grammar and cross-checks denotations.
"""

from __future__ import annotations

import sqlite3

import pytest
from hypothesis import given, settings, strategies as st

from repro.programs.sql import parse_sql
from repro.tables.table import Table
from repro.tables.values import format_number

_COLUMNS = ["name", "grade", "score"]

_names = st.sampled_from(
    ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]
)
_grades = st.sampled_from(["a", "b", "c"])
_scores = st.integers(min_value=-50, max_value=50)


@st.composite
def tables(draw) -> Table:
    n_rows = draw(st.integers(min_value=1, max_value=8))
    rows = [
        [draw(_names), draw(_grades), str(draw(_scores))]
        for _ in range(n_rows)
    ]
    return Table.from_rows(_COLUMNS, rows)


@st.composite
def queries(draw) -> str:
    kind = draw(st.sampled_from(
        ["lookup", "count", "sum", "avg", "minmax", "order", "gt"]
    ))
    grade = draw(_grades)
    threshold = draw(_scores)
    if kind == "lookup":
        return f"select name from w where grade = '{grade}'"
    if kind == "count":
        return f"select count ( * ) from w where grade = '{grade}'"
    if kind == "sum":
        return f"select sum ( score ) from w where grade = '{grade}'"
    if kind == "avg":
        return "select avg ( score ) from w"
    if kind == "minmax":
        agg = draw(st.sampled_from(["min", "max"]))
        return f"select {agg} ( score ) from w"
    if kind == "order":
        direction = draw(st.sampled_from(["asc", "desc"]))
        limit = draw(st.integers(min_value=1, max_value=3))
        return f"select name from w order by score {direction} limit {limit}"
    return f"select name from w where score > {threshold}"


def sqlite_denotation(table: Table, sql: str) -> list[str]:
    connection = sqlite3.connect(":memory:")
    connection.execute("create table w (name text, grade text, score real)")
    for row in table.rows:
        connection.execute(
            "insert into w values (?, ?, ?)",
            (row[0].raw, row[1].raw, row[2].as_number()),
        )
    out: list[str] = []
    for result_row in connection.execute(sql):
        for cell in result_row:
            if cell is None:
                continue
            if isinstance(cell, float) or isinstance(cell, int):
                out.append(format_number(float(cell)))
            else:
                out.append(str(cell))
    connection.close()
    return out


@settings(max_examples=120, deadline=None)
@given(table=tables(), sql=queries())
def test_engine_matches_sqlite(table: Table, sql: str):
    ours = parse_sql(sql).execute(table).denotation()
    theirs = sqlite_denotation(table, sql)
    if "order by" in sql:
        # sqlite's sort is not stable wrt insertion for ties; compare as
        # multisets of the selected values.
        assert sorted(ours) == sorted(theirs), sql
    else:
        assert ours == theirs, sql


@settings(max_examples=60, deadline=None)
@given(table=tables())
def test_count_star_matches_row_count(table: Table):
    result = parse_sql("select count ( * ) from w").execute(table)
    assert result.denotation() == [str(table.n_rows)]


@settings(max_examples=60, deadline=None)
@given(table=tables(), threshold=_scores)
def test_partition_gt_le(table: Table, threshold: int):
    """Rows above and at-most a threshold partition the table."""
    above = parse_sql(f"select name from w where score > {threshold}")
    at_most = parse_sql(f"select name from w where score <= {threshold}")
    n_above = len(above.execute(table).values)
    n_at_most = len(at_most.execute(table).values)
    assert n_above + n_at_most == table.n_rows
