"""End-to-end integration tests: the full UCTR story on tiny budgets."""

import pytest

from repro.datasets import (
    FeverousConfig,
    TatQAConfig,
    WikiSQLConfig,
    make_feverous,
    make_tatqa,
    make_wikisql,
)
from repro.models.baselines import RandomVerifier
from repro.pipelines import UCTR, UCTRConfig
from repro.train import (
    TrainingPlan,
    evaluate_qa,
    evaluate_verifier,
    train_qa,
    train_verifier,
)


@pytest.fixture(scope="module")
def feverous_small():
    return make_feverous(
        FeverousConfig(train_contexts=25, dev_contexts=12, test_contexts=6)
    )


@pytest.fixture(scope="module")
def tatqa_small():
    return make_tatqa(
        TatQAConfig(train_contexts=25, dev_contexts=12, test_contexts=6)
    )


class TestVerificationEndToEnd:
    def test_unsupervised_beats_random(self, feverous_small):
        contexts = list(feverous_small.train.contexts)
        framework = UCTR(
            UCTRConfig(program_kinds=("logic",), samples_per_context=10,
                       seed=5)
        )
        framework.fit(contexts)
        synthetic = framework.generate(contexts)
        assert len(synthetic) >= 100
        model = train_verifier(TrainingPlan.unsupervised(synthetic))
        dev = [s for s in feverous_small.dev.gold if s.label is not None]
        uctr_accuracy = evaluate_verifier(model, dev).accuracy
        random_accuracy = RandomVerifier(seed=1).accuracy(dev) * 100
        assert uctr_accuracy > random_accuracy + 5

    def test_supervised_is_strong(self, feverous_small):
        gold = [s for s in feverous_small.train.gold if s.label is not None]
        model = train_verifier(TrainingPlan.supervised(gold))
        dev = [s for s in feverous_small.dev.gold if s.label is not None]
        assert evaluate_verifier(model, dev).accuracy > 60


class TestQAEndToEnd:
    def test_unsupervised_answers_questions(self, tatqa_small):
        contexts = list(tatqa_small.train.contexts)
        framework = UCTR(
            UCTRConfig(program_kinds=("sql", "arith"), samples_per_context=10,
                       seed=5)
        )
        framework.fit(contexts)
        synthetic = framework.generate(contexts)
        model = train_qa(TrainingPlan.unsupervised(synthetic))
        dev = list(tatqa_small.dev.gold)
        scores = evaluate_qa(model, dev)
        assert scores.f1 > 25  # far above chance for open answers

    def test_few_shot_pretraining_helps(self, tatqa_small):
        from repro.train import few_shot_subset

        contexts = list(tatqa_small.train.contexts)
        framework = UCTR(
            UCTRConfig(program_kinds=("sql", "arith"), samples_per_context=10,
                       seed=5)
        )
        framework.fit(contexts)
        synthetic = framework.generate(contexts)
        shots = few_shot_subset(list(tatqa_small.train.gold), k=20, seed=0)
        pretrained = train_qa(TrainingPlan.few_shot(synthetic, shots))
        dev = list(tatqa_small.dev.gold)
        plain_unsup = train_qa(TrainingPlan.unsupervised(synthetic))
        # fine-tuning on a few shots must not destroy the model
        assert evaluate_qa(pretrained, dev).f1 >= (
            evaluate_qa(plain_unsup, dev).f1 - 10
        )


class TestWikiSQLEndToEnd:
    def test_zero_shot_below_trained(self):
        bench = make_wikisql(
            WikiSQLConfig(train_contexts=25, dev_contexts=12, test_contexts=6)
        )
        from repro.models.qa import TagOpQA

        zero_shot = TagOpQA()
        supervised = train_qa(TrainingPlan.supervised(list(bench.train.gold)))
        dev = list(bench.dev.gold)
        assert (
            evaluate_qa(supervised, dev).denotation
            > evaluate_qa(zero_shot, dev).denotation
        )
