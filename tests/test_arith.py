"""Unit tests for the arithmetic-expression parser and executor."""

import pytest

from repro.errors import ProgramExecutionError, ProgramParseError
from repro.programs.arith import parse_arith
from repro.programs.arith.ast import CellRef, NumberLiteral, StepRef


def run(table, source):
    return parse_arith(source).execute(table)


class TestParser:
    def test_single_step(self):
        program = parse_arith("subtract ( 5 , 3 )")
        assert len(program.steps) == 1
        assert program.steps[0].op == "subtract"

    def test_step_chain_with_refs(self):
        program = parse_arith("subtract ( 10 , 4 ) , divide ( #0 , 4 )")
        assert isinstance(program.steps[1].args[0], StepRef)
        assert program.steps[1].args[0].index == 0

    def test_cell_reference(self):
        program = parse_arith("add ( the revenue of 2019 , the cash of 2019 )")
        ref = program.steps[0].args[0]
        assert isinstance(ref, CellRef)
        assert ref.row_name == "revenue"
        assert ref.column_name == "2019"

    def test_const_literals(self):
        program = parse_arith("divide ( 10 , const_2 )")
        assert isinstance(program.steps[0].args[1], NumberLiteral)
        assert program.steps[0].args[1].value == 2.0

    def test_const_decimal_and_negative(self):
        assert parse_arith("add ( const_0_5 , 1 )").steps[0].args[0].value == 0.5
        assert parse_arith("add ( const_m1 , 1 )").steps[0].args[0].value == -1.0

    def test_forward_reference_rejected(self):
        with pytest.raises(ProgramParseError):
            parse_arith("divide ( #0 , 2 )")

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "frobnicate ( 1 , 2 )",
            "add ( 1 )",
            "add ( 1 , 2 , 3 )",
            "add ( 1 , 2",
            "table_max ( a , b )",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ProgramParseError):
            parse_arith(bad)

    def test_token_round_trip(self):
        source = "subtract ( the revenue of 2019 , the cash of 2019 ) , divide ( #0 , const_2 )"
        program = parse_arith(source)
        assert parse_arith(" ".join(program.tokens())) == program


class TestExecution:
    def test_subtract_cells(self, finance_table):
        result = run(
            finance_table,
            "subtract ( the revenue of 2019 , the revenue of 2018 )",
        )
        assert result.denotation() == ["200"]

    def test_pct_change(self, finance_table):
        result = run(
            finance_table,
            "subtract ( the revenue of 2019 , the revenue of 2018 ) , "
            "divide ( #0 , the revenue of 2018 )",
        )
        assert result.denotation() == ["0.2"]

    def test_reversed_cell_orientation(self, finance_table):
        """'the 2019 of revenue' resolves the same cell."""
        result = run(
            finance_table,
            "subtract ( the 2019 of revenue , the 2018 of revenue )",
        )
        assert result.denotation() == ["200"]

    def test_multiply_and_exp(self, finance_table):
        assert run(finance_table, "multiply ( 3 , 4 )").denotation() == ["12"]
        assert run(finance_table, "exp ( 2 , 10 )").denotation() == ["1024"]

    def test_greater_is_boolean(self, finance_table):
        result = run(
            finance_table,
            "greater ( the revenue of 2019 , the cash of 2019 )",
        )
        assert result.truth is True
        assert result.denotation() == ["true"]

    def test_table_aggregations(self, finance_table):
        assert run(finance_table, "table_sum ( 2019 )").denotation() == ["2850"]
        assert run(finance_table, "table_max ( 2019 )").denotation() == ["1200"]
        assert run(finance_table, "table_min ( 2018 )").denotation() == ["250"]
        assert run(finance_table, "table_average ( 2018 )").denotation() == ["657.5"]

    def test_share_of_total(self, finance_table):
        result = run(
            finance_table,
            "divide ( the revenue of 2019 , table_sum ( 2019 ) )",
        )
        assert float(result.denotation()[0]) == pytest.approx(1200 / 2850)

    def test_highlights_resolved_cells(self, finance_table):
        result = run(
            finance_table,
            "subtract ( the revenue of 2019 , the cash of 2019 )",
        )
        assert (0, "2019") in result.highlighted_cells
        assert (3, "2019") in result.highlighted_cells


class TestExecutionErrors:
    def test_unknown_cell(self, finance_table):
        with pytest.raises(ProgramExecutionError):
            run(finance_table, "add ( the widgets of 2019 , 1 )")

    def test_division_by_zero(self, finance_table):
        with pytest.raises(ProgramExecutionError):
            run(finance_table, "divide ( 1 , 0 )")

    def test_unknown_column_aggregation(self, finance_table):
        with pytest.raises(ProgramExecutionError):
            run(finance_table, "table_sum ( nothing )")

    def test_boolean_step_cannot_feed_arithmetic(self, finance_table):
        with pytest.raises(ProgramExecutionError):
            run(finance_table, "greater ( 2 , 1 ) , add ( #0 , 1 )")

    def test_overflow_rejected(self, finance_table):
        with pytest.raises(ProgramExecutionError):
            run(finance_table, "exp ( 10 , 400 ) , multiply ( #0 , #0 )")

    def test_column_arg_in_scalar_op(self, players_table):
        with pytest.raises(ProgramExecutionError):
            run(players_table, "add ( points , 1 )")
