"""Property tests (hypothesis) for values, tables, and serialization."""

from hypothesis import given, settings, strategies as st

from repro.tables.serialize import table_from_json, table_to_json
from repro.tables.table import Table
from repro.tables.values import (
    Value,
    coerce_number,
    format_number,
    parse_value,
)

_cell_text = st.text(
    alphabet="abcdefghij xyz0123456789.,-",
    min_size=0,
    max_size=12,
)
_numbers = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestValueProperties:
    @settings(max_examples=200, deadline=None)
    @given(number=_numbers)
    def test_format_parse_round_trip(self, number):
        rendered = format_number(number)
        parsed = coerce_number(rendered)
        assert parsed is not None
        assert abs(parsed - number) <= max(abs(number) * 1e-5, 1e-6)

    @settings(max_examples=200, deadline=None)
    @given(text=_cell_text)
    def test_parse_value_total(self, text):
        """parse_value never raises and preserves the raw string."""
        value = parse_value(text)
        assert value.raw == text

    @settings(max_examples=100, deadline=None)
    @given(text=_cell_text)
    def test_equals_reflexive(self, text):
        value = parse_value(text)
        assert value.equals(parse_value(text))

    @settings(max_examples=100, deadline=None)
    @given(a=_numbers, b=_numbers)
    def test_ordering_consistent_with_numbers(self, a, b):
        va, vb = Value.number(a), Value.number(b)
        if a < b:
            assert va < vb
        if a > b:
            assert va > vb

    @settings(max_examples=100, deadline=None)
    @given(a=_cell_text, b=_cell_text)
    def test_comparison_totality(self, a, b):
        va, vb = parse_value(a), parse_value(b)
        assert (va < vb) or (va >= vb)


@st.composite
def random_tables(draw):
    n_cols = draw(st.integers(min_value=1, max_value=4))
    n_rows = draw(st.integers(min_value=0, max_value=6))
    header = [f"col {i}" for i in range(n_cols)]
    rows = [
        [draw(_cell_text) for _ in range(n_cols)] for _ in range(n_rows)
    ]
    return Table.from_rows(header, rows, title=draw(_cell_text))


class TestTableProperties:
    @settings(max_examples=80, deadline=None)
    @given(table=random_tables())
    def test_json_round_trip(self, table):
        back = table_from_json(table_to_json(table))
        assert back.column_names == table.column_names
        assert back.n_rows == table.n_rows
        for row_index in range(table.n_rows):
            for column in table.column_names:
                assert (
                    back.cell(row_index, column).raw
                    == table.cell(row_index, column).raw
                )

    @settings(max_examples=80, deadline=None)
    @given(table=random_tables())
    def test_sort_is_permutation(self, table):
        for column in table.column_names:
            ordered = table.sort_by(column)
            assert ordered.n_rows == table.n_rows
            original = sorted(
                cell.raw for cell in table.column_values(column)
            )
            reordered = sorted(
                cell.raw for cell in ordered.column_values(column)
            )
            assert original == reordered

    @settings(max_examples=80, deadline=None)
    @given(table=random_tables(), data=st.data())
    def test_drop_row_shrinks_by_one(self, table, data):
        if table.n_rows == 0:
            return
        index = data.draw(st.integers(0, table.n_rows - 1))
        assert table.drop_row(index).n_rows == table.n_rows - 1

    @settings(max_examples=50, deadline=None)
    @given(table=random_tables())
    def test_retype_idempotent(self, table):
        once = table.retype()
        twice = once.retype()
        assert [c.type for c in once.schema] == [c.type for c in twice.schema]
