"""Tests for the telemetry subsystem and its accounting invariants."""

import json

import pytest

from repro.pipelines import UCTR, UCTRConfig
from repro.telemetry import (
    REPORT_KIND,
    REPORT_SCHEMA_VERSION,
    Telemetry,
    build_report,
    load_report,
    render_summary,
    validate_report,
    write_report,
)


class TestTelemetryCore:
    def test_counters_accumulate(self):
        telemetry = Telemetry()
        telemetry.attempt("table_only", "sql")
        telemetry.attempt("table_only", "sql")
        telemetry.attempt("table_only", "logic")
        telemetry.success("table_only", "sql")
        telemetry.reject("table_only", "filter:non_empty")
        assert telemetry.count("attempts") == 3
        assert telemetry.count("attempts", "table_only/sql") == 2
        assert telemetry.keys_under("attempts", "table_only") == {
            "sql": 2, "logic": 1,
        }

    def test_shortfall_ignores_non_positive(self):
        telemetry = Telemetry()
        telemetry.shortfall("splitting", 0, "attempts_exhausted")
        telemetry.shortfall("splitting", -2, "attempts_exhausted")
        assert telemetry.count("shortfalls") == 0
        telemetry.shortfall("splitting", 3, "attempts_exhausted")
        assert telemetry.count("shortfalls") == 3

    def test_snapshot_merge_round_trip(self):
        a = Telemetry()
        a.attempt("p", "sql")
        a.success("p", "sql")
        a.add_time("generate", 1.5)
        b = Telemetry()
        b.attempt("p", "sql")
        b.reject("p", "sampling_failed")
        b.add_time("generate", 0.5)
        merged = Telemetry.from_snapshot(a.snapshot()).merge(b)
        assert merged.count("attempts", "p/sql") == 2
        assert merged.count("successes") == 1
        assert merged.count("rejects") == 1
        assert merged.seconds("generate") == pytest.approx(2.0)
        # snapshots are JSON-compatible (what workers send over a pipe)
        json.dumps(merged.snapshot())

    def test_timer_context_manager(self):
        telemetry = Telemetry()
        with telemetry.timer("work"):
            pass
        assert telemetry.seconds("work") >= 0.0
        assert telemetry.snapshot()["timers"]["work"]["calls"] == 1

    def test_reconciles_detects_missing_outcome(self):
        telemetry = Telemetry()
        telemetry.attempt("p", "sql")
        assert not telemetry.reconciles("p")
        telemetry.success("p", "sql")
        assert telemetry.reconciles("p")


class TestTelemetryEvents:
    """Structured events: how quarantine records ride in telemetry."""

    def test_events_filtered_by_kind(self):
        telemetry = Telemetry()
        telemetry.event("quarantine", {"index": 3, "uid": "c3"})
        telemetry.event("other", {"index": 0})
        assert len(telemetry.events()) == 2
        assert telemetry.events("quarantine") == [
            {"kind": "quarantine", "index": 3, "uid": "c3"}
        ]

    def test_events_survive_snapshot_and_merge(self):
        a = Telemetry()
        a.event("quarantine", {"index": 5, "uid": "c5", "reason": "x"})
        b = Telemetry.from_snapshot(a.snapshot())
        assert b.events("quarantine") == a.events("quarantine")
        c = Telemetry()
        c.event("quarantine", {"index": 1, "uid": "c1", "reason": "y"})
        c.merge(b)
        assert [e["index"] for e in c.events("quarantine")] == [1, 5]
        json.dumps(c.snapshot())  # still pipe-safe

    def test_events_sorted_deterministically(self):
        telemetry = Telemetry()
        telemetry.event("quarantine", {"index": 9, "uid": "z"})
        telemetry.event("quarantine", {"index": 2, "uid": "a"})
        assert [e["index"] for e in telemetry.events("quarantine")] == [2, 9]

    def test_empty_events_do_not_bloat_snapshot(self):
        assert "events" not in Telemetry().snapshot()

    def test_returned_events_are_copies(self):
        telemetry = Telemetry()
        telemetry.event("quarantine", {"index": 0, "uid": "c"})
        telemetry.events("quarantine")[0]["index"] = 99
        assert telemetry.events("quarantine")[0]["index"] == 0


class TestGenerationAccounting:
    @pytest.fixture
    def framework(self, players_context, finance_context):
        framework = UCTR(
            UCTRConfig(program_kinds=("sql", "logic"),
                       samples_per_context=6, seed=5)
        )
        return framework.fit([players_context, finance_context])

    def test_attempts_reconcile_with_outcomes(
        self, framework, players_context, finance_context
    ):
        framework.generate([players_context, finance_context])
        telemetry = framework.last_telemetry
        assert telemetry is not None
        for pipeline in telemetry.pipelines():
            if pipeline == "parallel":
                continue
            assert telemetry.reconciles(pipeline), pipeline

    def test_emitted_matches_returned_samples(
        self, framework, players_context, finance_context
    ):
        samples = framework.generate([players_context, finance_context])
        telemetry = framework.last_telemetry
        assert telemetry.count("emitted") == len(samples)
        by_pipeline = {}
        for sample in samples:
            name = sample.provenance["pipeline"]
            by_pipeline[name] = by_pipeline.get(name, 0) + 1
        assert telemetry.section("emitted") == by_pipeline

    def test_budget_trim_keeps_emitted_consistent(
        self, framework, players_context, finance_context
    ):
        samples = framework.generate(
            [players_context, finance_context], budget=4
        )
        telemetry = framework.last_telemetry
        assert len(samples) <= 4
        assert telemetry.count("emitted") == len(samples)

    def test_generate_timer_recorded(self, framework, players_context):
        framework.generate([players_context])
        assert framework.last_telemetry.seconds("generate") > 0.0

    def test_instrumentation_does_not_change_samples(self, players_context):
        """A caller-supplied sink must not perturb generation."""
        def run(telemetry):
            framework = UCTR(
                UCTRConfig(program_kinds=("sql",), samples_per_context=5,
                           seed=13)
            )
            framework.fit([players_context])
            return [
                sample.to_json()
                for sample in framework.generate(
                    [players_context], telemetry=telemetry
                )
            ]

        assert run(None) == run(Telemetry())


class TestRunReport:
    def _report(self, framework_samples):
        framework, samples = framework_samples
        return build_report(
            framework.last_telemetry,
            seed=5,
            workers=1,
            contexts=2,
            samples_written=len(samples),
        )

    @pytest.fixture
    def framework_samples(self, players_context, finance_context):
        framework = UCTR(
            UCTRConfig(program_kinds=("sql", "logic"),
                       samples_per_context=6, seed=5)
        )
        framework.fit([players_context, finance_context])
        samples = framework.generate([players_context, finance_context])
        return framework, samples

    def test_schema_and_invariant(self, framework_samples):
        report = self._report(framework_samples)
        assert report["schema_version"] == REPORT_SCHEMA_VERSION
        assert report["kind"] == REPORT_KIND
        assert validate_report(report) == []
        _, samples = framework_samples
        total = sum(p["emitted"] for p in report["pipelines"].values())
        assert total == len(samples)

    def test_validate_flags_mismatch(self, framework_samples):
        report = self._report(framework_samples)
        report["samples_written"] += 1
        assert any("sum" in p for p in validate_report(report))

    def test_validate_accepts_reconciled_pipeline(self, framework_samples):
        """The pass case: attempts == successes + rejects is valid."""
        report = self._report(framework_samples)
        for stats in report["pipelines"].values():
            assert stats["attempts"] == stats["successes"] + stats["rejects"]
        assert validate_report(report) == []

    def test_validate_rejects_unreconciled_pipeline(self, framework_samples):
        """The fail case: a report whose outcomes do not account for
        every attempt is rejected (an attempt vanished or was counted
        twice)."""
        report = self._report(framework_samples)
        name = next(iter(report["pipelines"]))
        report["pipelines"][name]["attempts"] += 1
        problems = validate_report(report)
        assert any("reconcile" in p and name in p for p in problems)

    def test_validate_rejects_quarantine_count_mismatch(
        self, framework_samples
    ):
        report = self._report(framework_samples)
        report["quarantine"] = {"count": 2, "contexts": []}
        problems = validate_report(report)
        assert any("quarantine" in p for p in problems)

    def test_render_summary_mentions_quarantine_and_retries(
        self, framework_samples
    ):
        report = self._report(framework_samples)
        report["quarantine"] = {
            "count": 1,
            "contexts": [{"index": 3, "uid": "c3", "reason": "timeout"}],
        }
        report["retries"] = {"chunk/timeout": 2}
        text = render_summary(report)
        assert "quarantined: 1 context(s) (timeout)" in text
        assert "retries: 2" in text

    def test_write_load_round_trip(self, tmp_path, framework_samples):
        report = self._report(framework_samples)
        path = write_report(tmp_path / "r.json", report)
        assert load_report(path) == report

    def test_render_summary_mentions_pipelines(self, framework_samples):
        report = self._report(framework_samples)
        text = render_summary(report)
        assert "table_only" in text
        assert "samples=" in text
