"""Property tests over the sampling/labeling pipeline invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.eval.metrics import exact_match, numeracy_f1
from repro.sampling import ClaimLabel, ClaimLabeler, ProgramSampler
from repro.sampling.sampler import sample_many
from repro.tables.table import Table
from repro.templates import logic2text_pool, squall_pool

_names = st.sampled_from(
    ["ash", "birch", "cedar", "dogwood", "elm", "fir", "gum"]
)
_groups = st.sampled_from(["north", "south", "east"])
_scores = st.integers(min_value=0, max_value=99)


@st.composite
def grove_tables(draw):
    n = draw(st.integers(min_value=2, max_value=7))
    names = draw(st.lists(_names, min_size=n, max_size=n, unique=True))
    rows = [
        [name, draw(_groups), str(draw(_scores)), str(draw(_scores))]
        for name in names
    ]
    return Table.from_rows(
        ["tree", "region", "height", "age"], rows, row_name_column="tree"
    )


class TestSamplerProperties:
    @settings(max_examples=25, deadline=None)
    @given(table=grove_tables(), seed=st.integers(0, 10**6))
    def test_sampled_sql_always_executes_non_empty(self, table, seed):
        rng = random.Random(seed)
        sampler = ProgramSampler(rng)
        for sample in sample_many(
            sampler, list(squall_pool()), table, 6, rng
        ):
            assert not sample.result.is_empty
            # re-execution is deterministic
            again = sample.program.execute(table)
            assert again.denotation() == sample.result.denotation()

    @settings(max_examples=25, deadline=None)
    @given(table=grove_tables(), seed=st.integers(0, 10**6))
    def test_labeled_claims_always_certified(self, table, seed):
        """THE invariant: labels match program execution, always."""
        rng = random.Random(seed)
        sampler = ProgramSampler(rng)
        labeler = ClaimLabeler(rng)
        for sample in sample_many(
            sampler, list(logic2text_pool()), table, 6, rng
        ):
            claim = labeler.label(sample)
            truth = claim.sample.program.execute(table).truth
            assert truth is not None
            assert (claim.label is ClaimLabel.SUPPORTED) == truth

    @settings(max_examples=25, deadline=None)
    @given(table=grove_tables(), seed=st.integers(0, 10**6))
    def test_bindings_regenerate_program(self, table, seed):
        rng = random.Random(seed)
        sampler = ProgramSampler(rng)
        for sample in sample_many(
            sampler, list(logic2text_pool()), table, 6, rng
        ):
            rebuilt = sample.template.substitute(sample.bindings)
            assert rebuilt == sample.program.source


class TestMetricProperties:
    answers = st.lists(
        st.sampled_from(["1", "2", "alpha", "beta gamma", "42.5"]),
        min_size=1,
        max_size=3,
    )

    @settings(max_examples=100, deadline=None)
    @given(answer=answers)
    def test_exact_match_reflexive(self, answer):
        assert exact_match(answer, answer) == 1.0
        assert numeracy_f1(answer, answer) == 1.0

    @settings(max_examples=100, deadline=None)
    @given(a=answers, b=answers)
    def test_exact_match_symmetric(self, a, b):
        assert exact_match(a, b) == exact_match(b, a)

    @settings(max_examples=100, deadline=None)
    @given(a=answers, b=answers)
    def test_f1_bounded(self, a, b):
        score = numeracy_f1(a, b)
        assert 0.0 <= score <= 1.0

    @settings(max_examples=100, deadline=None)
    @given(a=answers, b=answers)
    def test_em_implies_f1(self, a, b):
        if exact_match(a, b) == 1.0:
            assert numeracy_f1(a, b) == 1.0
