"""Property tests: corruption determinism and the never-raise sanitizer.

The two contracts the robustness track stands on:

* every operator is a pure function of ``(Table, rng_key)`` — same key,
  byte-identical output; and generation with ``perturb=`` is as
  schedule-independent as clean generation (workers ∈ {1, 2, 4} agree).
* ``sanitize_table`` never raises on *any* table an operator chain can
  produce, and always returns a valid :class:`Table` plus a report.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.messy import OPERATORS, PROFILES, get_operator, perturb_table
from repro.sanitize import SanitizeReport, sanitize_table
from repro.tables.serialize import table_to_json
from repro.tables.table import Table

_cell = st.one_of(
    st.text(
        alphabet="abcdef ghij0123456789.,$%-—*| /()",
        min_size=0,
        max_size=10,
    ),
    st.integers(min_value=-10_000, max_value=10_000).map(str),
    st.sampled_from(
        ["", "-", "n/a", "1,200", "12.5%", "$400", "(1,200)", "1.200",
         "42 km", "2019", "march 3, 2019", "true"]
    ),
)

_keys = st.text(alphabet="abcdefgh0123456789:", min_size=1, max_size=12)


@st.composite
def tables(draw):
    n_cols = draw(st.integers(min_value=1, max_value=5))
    n_rows = draw(st.integers(min_value=0, max_value=6))
    header = [f"col {i}" for i in range(n_cols)]
    rows = [
        [draw(_cell) for _ in range(n_cols)] for _ in range(n_rows)
    ]
    # a plausible row-name column: unique non-empty first-column cells
    row_name = None
    first = [row[0].strip().lower() for row in rows]
    if rows and all(first) and len(set(first)) == len(first):
        row_name = header[0]
    return Table.from_rows(header, rows, row_name_column=row_name)


def _fingerprint(table: Table) -> str:
    return json.dumps(table_to_json(table), sort_keys=True)


class TestOperatorDeterminism:
    @settings(max_examples=60, deadline=None)
    @given(table=tables(), key=_keys)
    def test_every_operator_is_pure(self, table, key):
        for name in OPERATORS:
            op = get_operator(name)
            assert _fingerprint(op(table, key)) == _fingerprint(
                op(table, key)
            ), f"operator {name} is not deterministic for key {key!r}"

    @settings(max_examples=40, deadline=None)
    @given(table=tables(), key=_keys)
    def test_profiles_are_pure(self, table, key):
        for profile in PROFILES:
            assert _fingerprint(
                perturb_table(table, key, profile)
            ) == _fingerprint(perturb_table(table, key, profile))

    @settings(max_examples=40, deadline=None)
    @given(table=tables(), key=_keys)
    def test_operators_do_not_mutate_input(self, table, key):
        before = _fingerprint(table)
        for name in OPERATORS:
            get_operator(name)(table, key)
        assert _fingerprint(table) == before


class TestSanitizerTotality:
    @settings(max_examples=80, deadline=None)
    @given(table=tables(), key=_keys)
    def test_never_raises_on_perturbed_tables(self, table, key):
        messy = perturb_table(table, key, "heavy")
        out, report = sanitize_table(messy)
        assert isinstance(out, Table)
        assert isinstance(report, SanitizeReport)
        # the output is a *valid* table: serializable and re-parseable
        from repro.tables.serialize import table_from_json

        assert _fingerprint(table_from_json(table_to_json(out))) == \
            _fingerprint(out)

    @settings(max_examples=60, deadline=None)
    @given(table=tables())
    def test_never_raises_on_raw_tables(self, table):
        out, report = sanitize_table(table)
        assert isinstance(out, Table)
        assert report.cells.get("scanned", 0) == (
            table.n_rows * table.n_columns if table.n_columns else 0
        ) or report.structure  # structure repairs change the cell count

    @settings(max_examples=40, deadline=None)
    @given(table=tables(), key=_keys)
    def test_sanitize_is_deterministic(self, table, key):
        messy = perturb_table(table, key, "heavy")
        out_a, report_a = sanitize_table(messy)
        out_b, report_b = sanitize_table(messy)
        assert _fingerprint(out_a) == _fingerprint(out_b)
        assert report_a.to_json() == report_b.to_json()


class TestGenerationParity:
    """UCTR.generate(perturb=...) is schedule-independent."""

    @pytest.fixture(scope="class")
    def fitted(self):
        from repro.pipelines import UCTR, UCTRConfig
        from repro.tables import TableContext

        contexts = [
            TableContext(
                table=Table.from_rows(
                    ["player", "team", "points", "rebounds"],
                    [
                        [f"p{i}{j}", f"team{j % 3}", str(10 + 3 * j + i),
                         str(j + i)]
                        for j in range(5)
                    ],
                    title=f"stats {i}",
                    row_name_column="player",
                ),
                uid=f"ctx{i}",
            )
            for i in range(5)
        ]
        framework = UCTR(
            UCTRConfig(
                program_kinds=("sql",), samples_per_context=4, seed=7
            )
        )
        return framework.fit(contexts), contexts

    def _fingerprint_samples(self, samples):
        return json.dumps([s.to_json() for s in samples], sort_keys=True)

    def test_workers_do_not_change_perturbed_output(self, fitted):
        framework, contexts = fitted
        baseline = self._fingerprint_samples(
            framework.generate(contexts, workers=1, perturb="heavy")
        )
        for workers in (2, 4):
            assert self._fingerprint_samples(
                framework.generate(
                    contexts, workers=workers, perturb="heavy"
                )
            ) == baseline, f"workers={workers} diverged from serial"

    def test_perturbed_differs_from_clean(self, fitted):
        framework, contexts = fitted
        clean = self._fingerprint_samples(
            framework.generate(contexts, workers=1)
        )
        messy = self._fingerprint_samples(
            framework.generate(contexts, workers=1, perturb="heavy")
        )
        assert clean != messy

    def test_unknown_profile_fails_fast(self, fitted):
        from repro.errors import MessyTableError

        framework, contexts = fitted
        with pytest.raises(MessyTableError):
            framework.generate(contexts, workers=1, perturb="nope")
