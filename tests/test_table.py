"""Unit tests for the Table/Schema substrate."""

import pytest

from repro.errors import ColumnNotFoundError, SchemaError
from repro.tables import Column, Schema, Table
from repro.tables.values import ValueType


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Schema((Column("a"), Column("A")))

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Schema((Column("  "),))

    def test_index_case_insensitive(self):
        schema = Schema((Column("Player"), Column("Points")))
        assert schema.index("player") == 0
        assert schema.index("POINTS") == 1

    def test_missing_column_error_lists_available(self):
        schema = Schema((Column("a"), Column("b")))
        with pytest.raises(ColumnNotFoundError) as exc:
            schema.index("c")
        assert "a" in str(exc.value)

    def test_contains(self):
        schema = Schema((Column("a"),))
        assert "a" in schema
        assert "z" not in schema

    def test_numeric_columns(self, players_table):
        names = [c.name for c in players_table.schema.numeric_columns()]
        assert names == ["points", "rebounds"]


class TestTableConstruction:
    def test_type_inference(self, players_table):
        assert players_table.column_type("player") is ValueType.TEXT
        assert players_table.column_type("points") is ValueType.NUMBER

    def test_ragged_rows_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_rows(["a", "b"], [["1"], ["2", "3"]])

    def test_cells_from_mixed_python_types(self):
        table = Table.from_rows(["n", "b", "x"], [[1, True, None]])
        assert table.cell(0, "n").as_number() == 1.0
        assert table.cell(0, "b").typed is True
        assert table.cell(0, "x").is_null


class TestTableAccessors:
    def test_cell(self, players_table):
        assert players_table.cell(1, "team").raw == "bulls"

    def test_column_values(self, players_table):
        points = [v.as_number() for v in players_table.column_values("points")]
        assert points == [31, 22, 17, 28, 12]

    def test_distinct_values(self, players_table):
        teams = [v.raw for v in players_table.distinct_values("team")]
        assert teams == ["hawks", "bulls", "heat"]

    def test_distinct_values_collapse_equivalent_formats(self):
        # Regression: distinctness used to key on the lowered raw string,
        # splitting "1,000"/"1000"/"$1,000" into three values and
        # "2020-01-05"/"January 5, 2020" into two.
        table = Table.from_rows(
            ["amount", "day"],
            [
                ["1,000", "2020-01-05"],
                ["1000", "January 5, 2020"],
                ["$1,000", "2021-03-01"],
                ["500", "2021-03-01"],
            ],
        )
        amounts = [v.raw for v in table.distinct_values("amount")]
        assert amounts == ["1,000", "500"]  # first-seen representative
        days = [v.raw for v in table.distinct_values("day")]
        assert days == ["2020-01-05", "2021-03-01"]

    def test_row_name_uses_configured_column(self, players_table):
        assert players_table.row_name(2) == "alan reed"

    def test_find_row_by_name(self, players_table):
        assert players_table.find_row_by_name("BO CHEN") == 3
        assert players_table.find_row_by_name("nobody") is None


class TestTableOperations:
    def test_filter_rows(self, players_table):
        hawks = players_table.filter_rows(
            lambda row: row[1].raw == "hawks"
        )
        assert hawks.n_rows == 2

    def test_drop_row_immutably(self, players_table):
        smaller = players_table.drop_row(0)
        assert smaller.n_rows == 4
        assert players_table.n_rows == 5
        assert smaller.row_name(0) == "mike jones"

    def test_drop_row_out_of_range(self, players_table):
        with pytest.raises(IndexError):
            players_table.drop_row(99)

    def test_append_row(self, players_table):
        bigger = players_table.append_row(
            ["zoe lin", "jazz", "25", "5"]
        )
        assert bigger.n_rows == 6
        assert bigger.row_name(5) == "zoe lin"

    def test_append_row_wrong_width(self, players_table):
        with pytest.raises(SchemaError):
            players_table.append_row(["x"])

    def test_project(self, players_table):
        narrow = players_table.project(["points", "player"])
        assert narrow.column_names == ["points", "player"]
        assert narrow.cell(0, "points").raw == "31"

    def test_sort_by_descending(self, players_table):
        ordered = players_table.sort_by("points", descending=True)
        assert ordered.row_name(0) == "john smith"
        assert ordered.row_name(4) == "raj patel"

    def test_head(self, players_table):
        assert players_table.head(2).n_rows == 2
        assert players_table.head(0).n_rows == 0

    def test_retype_after_append(self, players_table):
        mixed = players_table.append_row(
            ["ann poe", "jazz", "n/a", "three"]
        ).retype()
        assert mixed.column_type("rebounds") is ValueType.TEXT
        # nulls do not break numeric inference
        assert mixed.column_type("points") is ValueType.NUMBER
