"""Reload-under-load: a real ``repro serve`` process, sustained HTTP
traffic, and a zero-downtime reload in the middle.

The contract under test (the tentpole's acceptance criterion): while a
rolling reload replaces every replica, a client hammering the server
sees **zero failed (non-429) requests**, responses flip atomically
from the old ``model`` id to the new one (no third value, no
interleaved garbage), and ``/metrics`` still reconciles afterwards.
"""

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.serve import HttpServeClient, ModelRegistry, TASK_QA
from repro.serve.stub import FixedServiceQA, FixedServiceVerifier

pytestmark = pytest.mark.timeout(600)


@pytest.fixture
def stub_registry(tmp_path):
    registry = ModelRegistry(tmp_path / "registry")
    registry.save(FixedServiceQA(0.002), "qa-stub")
    registry.save(FixedServiceVerifier(0.002), "verify-stub")
    return tmp_path / "registry"


def _spawn_server(registry_dir, *extra):
    src = Path(__file__).resolve().parents[1] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(src), env.get("PYTHONPATH", "")])
    )
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--registry", str(registry_dir), "--port", "0", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env,
    )
    port = None
    deadline = time.monotonic() + 120
    lines = []
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        lines.append(line)
        if line.startswith("serving on http://"):
            port = int(line.split(":")[2].split()[0])
            break
    if port is None:
        process.kill()
        raise AssertionError("server never came up:\n" + "".join(lines))
    return process, port


def _reload_under_load(registry_dir, serve_context, *serve_args):
    """Shared body: hammer, reload mid-stream, assert the contract."""
    process, port = _spawn_server(registry_dir, *serve_args)
    try:
        client = HttpServeClient(f"http://127.0.0.1:{port}")
        failures: list[str] = []
        rejected = [0]
        transitions: list[str] = []  # model id per completed request
        stop = threading.Event()
        lock = threading.Lock()

        def hammer(offset: int) -> None:
            from repro.errors import OverloadedError

            i = 0
            while not stop.is_set():
                try:
                    response = client.qa(
                        f"load question {offset} {i} ?", serve_context
                    )
                except OverloadedError:
                    with lock:
                        rejected[0] += 1
                    continue
                except Exception as error:  # transport failure = dropped
                    with lock:
                        failures.append(f"{type(error).__name__}: {error}")
                    continue
                finally:
                    i += 1
                with lock:
                    if not response.ok:
                        failures.append(response.error or "not ok")
                    else:
                        transitions.append(response.model)

        threads = [
            threading.Thread(target=hammer, args=(k,), daemon=True)
            for k in range(3)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.5)  # sustained traffic before the reload…
        ModelRegistry(registry_dir).save(FixedServiceQA(0.001), "qa-stub")
        summary = client.reload(timeout=120.0)
        assert summary["ok"] is True
        # reload() returns only after every old replica drained; give
        # client threads a beat to append their last old-model results,
        # then everything recorded beyond this point must be new-model.
        time.sleep(0.25)
        with lock:
            settle_index = len(transitions)
        time.sleep(0.5)  # …sustained traffic after the flip too
        stop.set()
        for thread in threads:
            thread.join(timeout=60)

        assert failures == [], failures[:5]
        models_seen = set(transitions)
        assert models_seen == {"qa-stub@v0001", "qa-stub@v0002"}
        # the flip is complete: past the settle point, old never recurs
        post_flip = transitions[settle_index:]
        assert post_flip, "no traffic recorded after the reload"
        assert set(post_flip) == {"qa-stub@v0002"}
        metrics = client.metrics()
        assert metrics["reloads"] == 1
        assert metrics["models"][TASK_QA] == "qa-stub@v0002"
        assert metrics["reconciles"]
        assert metrics["completed"] == len(transitions)
        assert metrics["rejected"] == rejected[0]
    finally:
        process.kill()
        process.communicate(timeout=60)
    return transitions


class TestReloadUnderLoad:
    def test_replica_pool_reload_drops_nothing(
        self, stub_registry, serve_context
    ):
        transitions = _reload_under_load(
            stub_registry, serve_context, "--replicas", "2", "--workers", "1"
        )
        assert len(transitions) >= 20  # the load was actually sustained

    def test_engine_reload_drops_nothing(self, stub_registry, serve_context):
        transitions = _reload_under_load(stub_registry, serve_context)
        assert len(transitions) >= 20
