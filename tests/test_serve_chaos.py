"""Chaos suite: deterministic fault injection through the serving stack.

Unit-level: the fault plan's gating semantics (replica index, request
ordinals, fire budgets, once-sentinels) and the registry torn-read
injector.  End-to-end: real replica pools with hung, crashing, and
corrupting children — proving hedges, breakers, failover, and the
accounting invariant (``accepted == completed + rejected + in_flight``,
zero silent losses) under each fault.
"""

import threading
import time

import pytest

from repro.errors import (
    DeadlineExceededError,
    IntegrityError,
    ServeError,
)
from repro.serve import (
    EngineConfig,
    HedgePolicy,
    ModelRegistry,
    PoolConfig,
    RegistryWatcher,
    TASK_QA,
    pool_from_registry,
)
from repro.serve import chaos
from repro.serve.chaos import ServeFaultPlan, ServeFaultSpec
from repro.serve.engine import context_digest
from repro.serve.stub import FixedServiceQA, FixedServiceVerifier

pytestmark = pytest.mark.timeout(120)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends with fault injection disabled."""
    chaos.clear()
    yield
    chaos.clear()


@pytest.fixture
def stub_registry(tmp_path):
    registry = ModelRegistry(tmp_path / "registry")
    registry.save(FixedServiceQA(0.002), "qa-stub")
    registry.save(FixedServiceVerifier(0.002), "verify-stub")
    return tmp_path / "registry"


def make_pool(stub_registry, **overrides):
    defaults = dict(
        replicas=2,
        engine=EngineConfig(workers=1),
        hedge=HedgePolicy(floor_s=0.05, ceiling_s=0.3),
        breaker_threshold=2,
        breaker_cooldown_s=5.0,
    )
    defaults.update(overrides)
    pool = pool_from_registry(
        str(stub_registry), config=PoolConfig(**defaults)
    )
    pool.start()
    return pool


def sentence_for_slot(pool, slot, context, tag="chaos"):
    """A QA sentence whose deterministic route is ``slot``."""
    digest = context_digest(context)
    for i in range(256):
        sentence = f"what is the {tag} value number {i} ?"
        if pool.route(TASK_QA, sentence, digest) == slot:
            return sentence
    raise AssertionError(f"no sentence routed to slot {slot}")


class TestPlan:
    def test_json_round_trip(self):
        plan = ServeFaultPlan((
            ServeFaultSpec(kind="hang", replica=1, after=2, count=1),
            ServeFaultSpec(kind="slow", seconds=0.5, every=3),
        ))
        assert ServeFaultPlan.from_json(plan.to_json()) == plan

    def test_install_clear_and_context(self):
        plan = ServeFaultPlan((ServeFaultSpec(kind="crash"),))
        assert chaos.active_plan() is None
        with chaos.injected(plan):
            assert chaos.active_plan() == plan
        assert chaos.active_plan() is None

    def test_injectors_are_none_when_disabled(self):
        # the zero-overhead-when-disabled guarantee is this None: call
        # sites built without a plan carry no injection code at all.
        assert chaos.replica_injector() is None
        assert chaos.engine_injector() is None
        plan = ServeFaultPlan((ServeFaultSpec(kind="hang"),))
        with chaos.injected(plan):
            assert chaos.replica_injector() is not None
            assert chaos.engine_injector() is None  # no engine kinds


class TestInjectorGating:
    def _injector(self, spec, replica=None):
        return chaos.ChaosInjector([spec], replica)

    def test_after_every_count(self):
        injector = self._injector(
            ServeFaultSpec(kind="hang", after=2, every=3, count=2)
        )
        fired = [
            injector.on_request() is not None for _ in range(12)
        ]
        # requests 3 and 6 fire (1-indexed: after 2, stride 3, budget 2)
        assert fired == [
            False, False, True, False, False, True,
            False, False, False, False, False, False,
        ]

    def test_replica_filtering(self):
        spec = ServeFaultSpec(kind="crash", replica=1)
        assert self._injector(spec, replica=0).on_request() is None
        assert self._injector(spec, replica=1).on_request() is spec
        # replica=None specs fire everywhere
        anywhere = ServeFaultSpec(kind="crash")
        assert self._injector(anywhere, replica=3).on_request() is anywhere

    def test_once_sentinel_fires_once_across_injectors(self, tmp_path):
        once = str(tmp_path / "once.sentinel")
        spec = ServeFaultSpec(kind="hang", once_path=once)
        first = self._injector(spec)
        second = self._injector(spec)
        assert first.on_request() is spec
        assert first.on_request() is None  # sentinel already claimed
        assert second.on_request() is None  # across instances too


class TestRegistryTornRead:
    def _plan(self, count=1):
        return ServeFaultPlan((
            ServeFaultSpec(kind="registry_torn_read", count=count),
        ))

    def test_record_raises_injected_integrity_error(self, stub_registry):
        registry = ModelRegistry(stub_registry)
        with chaos.injected(self._plan(count=1)):
            with pytest.raises(IntegrityError, match="injected torn read"):
                registry.record("qa-stub")
            # budget exhausted: the very next read succeeds
            assert registry.record("qa-stub").model_id == "qa-stub@v0001"

    def test_watcher_survives_torn_read(self, stub_registry):
        """Regression: a torn read mid-save must not kill the watcher.

        The watcher logs a structured event, keeps its last healthy
        observation, and still catches the version change on the next
        healthy poll.
        """
        registry = ModelRegistry(stub_registry)
        reloads = []
        events = []
        watcher = RegistryWatcher(
            registry,
            ["qa-stub"],
            lambda: reloads.append(1) or {"mode": "test"},
            interval_s=0.01,
            emit=events.append,
        )
        # poll 1: every read is torn — logged, survived, no reload
        with chaos.injected(self._plan(count=4)):
            assert watcher.poll_once() is None
        assert watcher.errors >= 1
        assert any('"registry_watch_error"' in e for e in events)
        assert reloads == []
        # poll 2: healthy again, nothing changed — still no reload
        assert watcher.poll_once() is None
        # poll 3: the default moved — the change was not lost
        registry.save(FixedServiceQA(0.001), "qa-stub")
        summary = watcher.poll_once()
        assert summary == {"mode": "test"}
        assert reloads == [1]
        assert any('"registry_watch_reload"' in e for e in events)

    def test_watcher_survives_failing_reloader(self, stub_registry):
        registry = ModelRegistry(stub_registry)
        events = []

        def explode():
            raise RuntimeError("reload transport down")

        watcher = RegistryWatcher(
            registry, ["qa-stub"], explode, interval_s=0.01,
            emit=events.append,
        )
        registry.save(FixedServiceQA(0.001), "qa-stub")
        assert watcher.poll_once() is None  # failed, not fatal
        assert any('"registry_watch_reload_failed"' in e for e in events)
        # the change is retried (and still failing) on the next tick
        assert watcher.poll_once() is None
        assert len(
            [e for e in events if "registry_watch_reload_failed" in e]
        ) == 2


class TestHungReplica:
    def test_hedge_completes_request_and_strikes_primary(
        self, stub_registry, serve_context
    ):
        plan = ServeFaultPlan((
            ServeFaultSpec(kind="hang", replica=0, count=1),
        ))
        with chaos.injected(plan):
            pool = make_pool(stub_registry)
        try:
            sentence = sentence_for_slot(pool, 0, serve_context)
            started = time.monotonic()
            response = pool.infer(TASK_QA, sentence, serve_context)
            elapsed = time.monotonic() - started
            assert response.ok, response.error
            # the hedge fired after the (cold-window) ceiling delay and
            # won; the hung primary took the strike.
            assert elapsed < 5.0
            stats = pool.stats()
            assert stats["hedges"]["fired"] >= 1
            assert stats["hedges"]["won"] >= 1
            breaker = stats["replicas"][0]["breaker"]
            assert breaker["consecutive_failures"] >= 1
            assert stats["reconciles"]
            assert stats["in_flight"] == 0
        finally:
            pool.stop(drain=True)


class TestCrashingReplica:
    def test_failover_completes_and_slot_respawns(
        self, stub_registry, serve_context
    ):
        plan = ServeFaultPlan((
            ServeFaultSpec(kind="crash", replica=0, count=1),
        ))
        with chaos.injected(plan):
            pool = make_pool(stub_registry)
        try:
            sentence = sentence_for_slot(pool, 0, serve_context)
            response = pool.infer(TASK_QA, sentence, serve_context)
            # the crash is terminal on the first leg; failover
            # re-dispatches immediately and the request still succeeds.
            assert response.ok, response.error
            assert pool.stats()["hedges"]["fired"] >= 1
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                stats = pool.stats()
                alive = [e for e in stats["replicas"] if e.get("alive")]
                if stats["replica_restarts"] >= 1 and len(alive) == 2:
                    break
                time.sleep(0.1)
            else:
                pytest.fail("crashed replica was never respawned")
            assert stats["reconciles"]
        finally:
            pool.stop(drain=True)


class TestCorruptReplies:
    def test_corrupt_reply_is_typed_not_fatal(
        self, stub_registry, serve_context
    ):
        plan = ServeFaultPlan((
            ServeFaultSpec(kind="corrupt", replica=0, count=1),
        ))
        with chaos.injected(plan):
            pool = make_pool(stub_registry, hedge=None)
        try:
            sentence = sentence_for_slot(pool, 0, serve_context)
            response = pool.infer(TASK_QA, sentence, serve_context)
            assert not response.ok
            assert response.error.startswith("replica_failed")
            assert "corrupt" in response.error
            stats = pool.stats()
            assert stats["replicas"][0]["breaker"][
                "consecutive_failures"
            ] >= 1
            assert stats["errors"] == 1
            assert stats["reconciles"]
            # the replica itself is fine — the next request succeeds
            again = pool.infer(TASK_QA, sentence, serve_context)
            assert again.ok
        finally:
            pool.stop(drain=True)

    def test_repeated_corruption_trips_breaker_and_spills(
        self, stub_registry, serve_context
    ):
        plan = ServeFaultPlan((
            ServeFaultSpec(kind="corrupt", replica=0, count=2),
        ))
        with chaos.injected(plan):
            pool = make_pool(stub_registry, hedge=None)
        try:
            sentence = sentence_for_slot(pool, 0, serve_context)
            for _ in range(2):
                response = pool.infer(TASK_QA, sentence, serve_context)
                assert not response.ok
            states = {e["slot"]: e for e in pool.replica_states()}
            assert states[0]["state"] == "breaker_open"
            assert states[0]["routable"] is False
            assert states[1]["state"] == "ready"
            assert pool.any_routable()
            # traffic for slot 0 now spills deterministically to slot 1
            response = pool.infer(TASK_QA, sentence, serve_context)
            assert response.ok
            stats = pool.stats()
            assert stats["spills"] >= 1
            assert stats["replicas"][0]["breaker"]["state"] == "open"
            assert stats["reconciles"]
        finally:
            pool.stop(drain=True)


class TestDeadlines:
    def test_exhausted_budget_is_rejected_before_dispatch(
        self, stub_registry, serve_context
    ):
        pool = make_pool(stub_registry)
        try:
            with pytest.raises(DeadlineExceededError):
                pool.infer(
                    TASK_QA, "any question at all ?", serve_context,
                    deadline_s=0.0,
                )
            stats = pool.stats()
            assert stats["deadline_rejected"] == 1
            assert stats["rejected"] == 1
            assert stats["reconciles"]
        finally:
            pool.stop(drain=True)

    def test_budget_below_observed_p50_is_rejected(
        self, stub_registry, serve_context
    ):
        pool = make_pool(stub_registry)
        try:
            sentence = sentence_for_slot(pool, 0, serve_context)
            for i in range(4):  # warm slot 0's latency window
                warm = sentence_for_slot(
                    pool, 0, serve_context, tag=f"warm{i}"
                )
                assert pool.infer(TASK_QA, warm, serve_context).ok
            with pytest.raises(DeadlineExceededError) as exc:
                pool.infer(
                    TASK_QA, sentence, serve_context, deadline_s=1e-7
                )
            assert exc.value.estimate_s is not None
            assert exc.value.estimate_s > 1e-7
        finally:
            pool.stop(drain=True)


class TestShutdownUnderFire:
    def test_stop_during_hedged_inflight_reconciles(
        self, stub_registry, serve_context
    ):
        """Zero silent losses: every request issued around a drain ends
        as a response or a typed exception, and the books balance."""
        plan = ServeFaultPlan((
            ServeFaultSpec(kind="hang", replica=0),  # every slot-0 request
        ))
        with chaos.injected(plan):
            pool = make_pool(stub_registry)
        outcomes = []
        lock = threading.Lock()

        def fire(i):
            try:
                response = pool.infer(
                    TASK_QA, f"shutdown fire question {i} ?", serve_context
                )
                with lock:
                    outcomes.append(("response", response.ok))
            except ServeError as error:
                with lock:
                    outcomes.append(("raised", type(error).__name__))

        threads = [
            threading.Thread(target=fire, args=(i,), daemon=True)
            for i in range(6)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.15)  # some legs in flight, some hedges pending
        pool.stop(drain=True)
        for thread in threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in threads)
        assert len(outcomes) == 6  # nothing vanished
        stats = pool.stats()
        assert stats["in_flight"] == 0
        assert stats["accepted"] == (
            stats["completed"] + stats["rejected"]
        )
        assert stats["reconciles"]
