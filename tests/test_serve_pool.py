"""Tests for the multi-process replica pool.

These spawn real replica processes, so the served models are the
fixed-service stubs from :mod:`repro.serve.stub` — picklable,
importable in the children, and millisecond-fast — rather than trained
models (training in every spawned child would dominate the suite).
"""

import os
import signal
import threading
import time

import pytest

from repro.errors import EngineStoppedError, ServeError
from repro.serve import (
    EngineConfig,
    ModelRegistry,
    PoolConfig,
    ReplicaPool,
    TASK_QA,
    TASK_VERIFY,
    pool_from_registry,
)
from repro.serve.stub import FixedServiceQA, FixedServiceVerifier

pytestmark = pytest.mark.timeout(300)


@pytest.fixture
def stub_registry(tmp_path):
    registry = ModelRegistry(tmp_path / "registry")
    registry.save(FixedServiceQA(0.002), "qa-stub")
    registry.save(FixedServiceVerifier(0.002), "verify-stub")
    return tmp_path / "registry"


@pytest.fixture
def pool(stub_registry):
    pool = pool_from_registry(
        str(stub_registry),
        config=PoolConfig(replicas=2, engine=EngineConfig(workers=1)),
    )
    pool.start()
    yield pool
    pool.stop(drain=True)


class TestServing:
    def test_infer_both_tasks(self, pool, serve_context):
        qa = pool.infer(
            TASK_QA, "what is the points for john smith ?", serve_context
        )
        verify = pool.infer(
            TASK_VERIFY, "for john smith , the points is 31 .", serve_context
        )
        assert qa.ok and qa.task == TASK_QA
        assert qa.model == "qa-stub@v0001"
        assert verify.ok and verify.label in ("supported", "refuted")
        assert verify.model == "verify-stub@v0001"

    def test_unknown_task_is_typed(self, pool, serve_context):
        with pytest.raises(ServeError):
            pool.infer("translate", "bonjour", serve_context)

    def test_stats_aggregate_and_reconcile(self, pool, serve_context):
        for i in range(6):
            pool.infer(TASK_QA, f"question number {i} ?", serve_context)
        stats = pool.stats()
        assert stats["accepted"] == 6
        assert stats["completed"] == 6
        assert stats["in_flight"] == 0
        assert stats["reconciles"]
        assert len(stats["replicas"]) == 2
        # pool accounting equals the sum over replica engines
        per_replica = sum(
            entry["engine"]["completed"]
            for entry in stats["replicas"]
            if "engine" in entry
        )
        assert per_replica == 6
        assert stats["models"] == {
            TASK_QA: "qa-stub@v0001", TASK_VERIFY: "verify-stub@v0001",
        }
        assert stats["latency"][TASK_QA]["count"] == 6
        assert stats["latency_by_model"]["qa-stub@v0001"]["count"] == 6
        # resilience surface: breaker + hedge + deadline accounting is
        # always present, even when nothing has gone wrong
        assert stats["hedges"] == {"fired": 0, "won": 0}
        assert stats["spills"] == 0
        assert stats["deadline_rejected"] == 0
        for entry in stats["replicas"]:
            assert entry["state"] == "ready"
            assert entry["breaker"]["state"] == "closed"
            assert entry["breaker"]["trips"] == 0

    def test_replica_states_all_ready(self, pool):
        states = pool.replica_states()
        assert [e["slot"] for e in states] == [0, 1]
        assert all(e["state"] == "ready" for e in states)
        assert all(e["routable"] for e in states)
        assert pool.any_routable()

    def test_routing_is_deterministic(self, pool, serve_context):
        from repro.serve.engine import context_digest

        digest = context_digest(serve_context)
        slots = {
            pool.route(TASK_QA, "what is the team for bo chen ?", digest)
            for _ in range(10)
        }
        assert len(slots) == 1  # same request, same replica, always
        assert slots.pop() in (0, 1)
        # distinct requests spread across slots
        spread = {
            pool.route(TASK_QA, f"question variant {i} ?", digest)
            for i in range(32)
        }
        assert spread == {0, 1}

    def test_repeat_request_hits_one_replica_cache(
        self, pool, serve_context
    ):
        sentence = "what is the rebounds for mike jones ?"
        first = pool.infer(TASK_QA, sentence, serve_context)
        repeat = pool.infer(TASK_QA, sentence, serve_context)
        assert first.answer == repeat.answer
        assert repeat.cached  # deterministic routing → cache locality

    def test_stopped_pool_rejects_typed(self, stub_registry, serve_context):
        pool = pool_from_registry(
            str(stub_registry),
            config=PoolConfig(replicas=1, engine=EngineConfig(workers=1)),
        )
        pool.start()
        pool.stop(drain=True)
        with pytest.raises(EngineStoppedError):
            pool.infer(TASK_QA, "anyone home ?", serve_context)
        assert pool.stats()["reconciles"]

    def test_bad_shapes_are_typed(self, stub_registry):
        with pytest.raises(ServeError):
            PoolConfig(replicas=0)
        with pytest.raises(ServeError):
            ReplicaPool(str(stub_registry), {})
        with pytest.raises(ServeError):
            ReplicaPool(
                str(stub_registry), {"translate": ("qa-stub", None)}
            )


class TestReload:
    def test_rolling_reload_under_load_drops_nothing(
        self, stub_registry, serve_context
    ):
        pool = pool_from_registry(
            str(stub_registry),
            config=PoolConfig(replicas=2, engine=EngineConfig(workers=1)),
        )
        pool.start()
        try:
            failures = []
            models_seen = set()
            stop = threading.Event()

            def hammer(offset: int) -> None:
                i = 0
                while not stop.is_set():
                    response = pool.infer(
                        TASK_QA,
                        f"load question {offset} {i} ?",
                        serve_context,
                    )
                    if not response.ok:
                        failures.append(response.error)
                    models_seen.add(response.model)
                    i += 1

            threads = [
                threading.Thread(target=hammer, args=(k,), daemon=True)
                for k in range(3)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.3)
            ModelRegistry(stub_registry).save(
                FixedServiceQA(0.001), "qa-stub"
            )
            summary = pool.reload()
            time.sleep(0.3)
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
            assert summary["old"][TASK_QA] == "qa-stub@v0001"
            assert summary["new"][TASK_QA] == "qa-stub@v0002"
            assert failures == []  # zero dropped requests across reload
            assert models_seen == {"qa-stub@v0001", "qa-stub@v0002"}
            stats = pool.stats()
            assert stats["reloads"] == 1
            assert stats["reconciles"]
            assert stats["in_flight"] == 0
            # canary view: both versions carry latency windows
            assert "qa-stub@v0001" in stats["latency_by_model"]
            assert "qa-stub@v0002" in stats["latency_by_model"]
        finally:
            pool.stop(drain=True)

    def test_reload_resolves_moved_default(
        self, stub_registry, serve_context
    ):
        pool = pool_from_registry(
            str(stub_registry),
            config=PoolConfig(replicas=1, engine=EngineConfig(workers=1)),
        )
        pool.start()
        try:
            ModelRegistry(stub_registry).save(
                FixedServiceVerifier(0.001), "verify-stub"
            )
            pool.reload()
            response = pool.infer(
                TASK_VERIFY, "a claim after the reload .", serve_context
            )
            assert response.ok
            assert response.model == "verify-stub@v0002"
        finally:
            pool.stop(drain=True)

    def test_reload_unknown_task_is_typed(self, pool):
        with pytest.raises(ServeError):
            pool.reload({"translate": ("qa-stub", None)})


class TestReplicaDeath:
    def test_dead_replica_is_respawned(self, stub_registry, serve_context):
        pool = pool_from_registry(
            str(stub_registry),
            config=PoolConfig(replicas=2, engine=EngineConfig(workers=1)),
        )
        pool.start()
        try:
            victim = pool.stats()["replicas"][0]["pid"]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                stats = pool.stats()  # stats() triggers ensure_live()
                alive = [e for e in stats["replicas"] if e["alive"]]
                if stats["replica_restarts"] >= 1 and len(alive) == 2:
                    break
                time.sleep(0.1)
            else:
                pytest.fail("dead replica was never respawned")
            # and the pool serves from both slots again
            for i in range(8):
                response = pool.infer(
                    TASK_QA, f"post restart question {i} ?", serve_context
                )
                assert response.ok
            pids = {e["pid"] for e in pool.stats()["replicas"]}
            assert victim not in pids
        finally:
            pool.stop(drain=True)
