"""Unit tests for the best-effort sanitizer and its report."""

from repro.sanitize import (
    SanitizeReport,
    sanitize_context,
    sanitize_samples,
    sanitize_table,
    sanitize_table_payload,
)
from repro.tables.serialize import table_to_json
from repro.tables.table import Table
from repro.tables.values import ValueType


def _table(header, rows, **kwargs):
    return Table.from_rows(header, rows, **kwargs)


class TestCellRepairs:
    def test_clean_table_is_untouched(self, players_table):
        out, report = sanitize_table(players_table)
        assert table_to_json(out) == table_to_json(players_table)
        assert not report.changed
        assert report.cells["scanned"] == 20
        assert not report.errors

    def test_footnote_markers_stripped(self):
        table = _table(
            ["name", "points"],
            [["ada *", "31 [a]"], ["grace †", "22 (est.)"]],
        )
        out, report = sanitize_table(table)
        assert [row[0].raw for row in out.rows] == ["ada", "grace"]
        assert [row[1].raw for row in out.rows] == ["31", "22"]
        assert report.repairs["footnote"] == 4

    def test_dash_null_conventions_canonicalized(self):
        table = _table(
            ["name", "points"],
            [["ada", "—"], ["grace", "n.a."], ["alan", "(n/a)"]],
        )
        out, report = sanitize_table(table)
        assert all(row[1].is_null for row in out.rows)
        assert report.cells["nulled"] == 3
        assert report.repairs["null_convention"] == 3

    def test_euro_locale_needs_column_consensus(self):
        lone = _table(["name", "value"], [["a", "1.200"], ["b", "7"]])
        out, report = sanitize_table(lone)
        # a single euro-looking cell is ambiguous: left alone
        assert out.rows[0][1].raw == "1.200"
        consensus = _table(
            ["name", "value"],
            [["a", "1.200"], ["b", "3.450.000"], ["c", "7"]],
        )
        out, report = sanitize_table(consensus)
        assert [row[1].raw for row in out.rows] == ["1200", "3450000", "7"]
        assert report.repairs["locale"] == 2

    def test_us_comma_grouping_never_rewritten(self):
        # "1,200"-style cells already parse as 1200 via coerce_number;
        # consensus among them is *not* euro evidence.
        table = _table(
            ["name", "value"],
            [["a", "1,200"], ["b", "3,450"], ["c", "7"]],
        )
        out, report = sanitize_table(table)
        assert [row[1].raw for row in out.rows] == ["1,200", "3,450", "7"]
        assert out.cell(0, "value").as_number() == 1200.0
        assert "locale" not in report.repairs

    def test_euro_decimal_comma_converted_by_consensus(self):
        table = _table(
            ["name", "value"],
            [["a", "12,5"], ["b", "3,45"], ["c", "7"]],
        )
        out, report = sanitize_table(table)
        assert [row[1].raw for row in out.rows] == ["12.5", "3.45", "7"]
        assert report.repairs["locale"] == 2

    def test_dot_grouping_pins_column_locale_for_comma_cells(self):
        # "3,450" alone reads as US 3450, but next to "1.200,5" the
        # column is demonstrably euro-localized, so it means 3.450.
        table = _table(
            ["name", "value"],
            [["a", "1.200,5"], ["b", "3,450"], ["c", "7"]],
        )
        out, report = sanitize_table(table)
        assert [row[1].raw for row in out.rows] == ["1200.5", "3.450", "7"]
        assert report.repairs["locale"] == 2

    def test_space_grouping_unambiguous_per_cell(self):
        table = _table(["name", "value"], [["a", "1 234 567"], ["b", "9"]])
        out, report = sanitize_table(table)
        assert out.rows[0][1].raw == "1234567"
        assert out.rows[0][1].type is ValueType.NUMBER

    def test_unit_suffix_stripped_by_majority(self):
        table = _table(
            ["city", "area"],
            [["x", "891 km"], ["y", "755 km"], ["z", "405 km"]],
        )
        out, report = sanitize_table(table)
        assert [row[1].raw for row in out.rows] == ["891", "755", "405"]
        assert out.schema.columns[1].type is ValueType.NUMBER
        assert report.repairs["unit"] == 3

    def test_unrepairable_cells_kept_as_text(self):
        table = _table(
            ["name", "points"],
            [["a", "31"], ["b", "22"], ["c", "twenty"], ["d", "14"]],
        )
        out, report = sanitize_table(table)
        assert out.cell(2, "points").raw == "twenty"
        assert out.cell(2, "points").type is ValueType.TEXT
        assert report.kept_text_cells == 1


class TestStructureRepairs:
    def test_merged_column_split(self):
        table = _table(
            ["name", "points / rebounds"],
            [["a", "31 | 7"], ["b", "22 | 11"]],
        )
        out, report = sanitize_table(table)
        assert out.column_names == ["name", "points", "rebounds"]
        assert [c.raw for c in out.rows[0]] == ["a", "31", "7"]
        assert report.structure["columns_split"] == 1

    def test_duplicate_column_dropped(self):
        table = _table(
            ["name", "points", "points (2)"],
            [["a", "31", "31"], ["b", "22", "22"]],
        )
        out, report = sanitize_table(table)
        assert out.column_names == ["name", "points"]
        assert report.structure["duplicate_columns_dropped"] == 1

    def test_suffixed_column_with_different_cells_kept(self):
        table = _table(
            ["name", "points", "points (2)"],
            [["a", "31", "99"], ["b", "22", "98"]],
        )
        out, _ = sanitize_table(table)
        assert out.n_columns == 3

    def test_year_matrix_untransposed(self, finance_table):
        from repro.messy import get_operator

        for key in ("t0", "t1", "t2", "t3", "t4", "t5"):
            transposed = get_operator("transpose")(finance_table, key)
            if transposed.column_names != finance_table.column_names:
                break
        else:
            raise AssertionError("transpose never fired")
        out, report = sanitize_table(transposed)
        assert out.column_names == finance_table.column_names
        assert table_to_json(out) == table_to_json(finance_table)
        assert report.structure["transposed"] == 1

    def test_year_keyed_table_not_flipped(self):
        # an all-year first column under a header that names a time
        # dimension is the table's intended layout, not transposition.
        table = _table(
            ["year", "revenue", "profit"],
            [["2019", "1200", "300"], ["2020", "1400", "350"],
             ["2021", "1600", "400"]],
        )
        out, report = sanitize_table(table)
        assert out.column_names == ["year", "revenue", "profit"]
        assert "transposed" not in report.structure

    def test_header_footnotes_normalized(self):
        table = _table(
            ["name", "points *", "rebounds [1]"],
            [["a", "1", "2"]],
        )
        out, report = sanitize_table(table)
        assert out.column_names == ["name", "points", "rebounds"]
        assert report.structure["headers_normalized"] == 2


class TestEntryPoints:
    def test_sanitize_context_keeps_everything_else(self, players_context):
        sanitized, _ = sanitize_context(players_context)
        assert sanitized.uid == players_context.uid
        assert sanitized.paragraphs == players_context.paragraphs

    def test_sanitize_samples_aggregates(self, players_context):
        from repro.messy import perturb_samples
        from tests.conftest import qa_lookup_samples

        samples = qa_lookup_samples(players_context)[:3]
        messy = perturb_samples(samples, "agg:0", "light")
        cleaned, report = sanitize_samples(messy)
        assert len(cleaned) == 3
        assert report.cells["scanned"] == sum(
            s.context.table.n_rows * s.context.table.n_columns
            for s in messy
        )
        for clean, dirty in zip(cleaned, messy):
            assert clean.answer == dirty.answer


class TestPayloadRepair:
    def test_ragged_rows_padded_and_truncated(self):
        payload = {
            "columns": [{"name": "a"}, {"name": "b"}],
            "rows": [["1"], ["1", "2", "3"], ["1", "2"]],
        }
        fixed, fixes = sanitize_table_payload(payload)
        assert [len(row) for row in fixed["rows"]] == [2, 2, 2]
        assert fixes["rows_padded"] == 1
        assert fixes["rows_truncated"] == 1

    def test_duplicate_and_empty_headers_repaired(self):
        payload = {
            "columns": [
                {"name": "points"}, {"name": "points"}, {"name": "  "},
            ],
            "rows": [],
        }
        fixed, fixes = sanitize_table_payload(payload)
        names = [column["name"] for column in fixed["columns"]]
        assert len({n.lower() for n in names}) == 3
        assert fixes["header_names_deduped"] == 1
        assert fixes["header_names_filled"] == 1

    def test_scalar_cells_coerced(self):
        payload = {
            "columns": [{"name": "a"}],
            "rows": [[None], [12], [True], [{"x": 1}]],
        }
        fixed, fixes = sanitize_table_payload(payload)
        assert all(
            isinstance(cell, str) for row in fixed["rows"] for cell in row
        )
        assert fixed["rows"][0] == [""]
        # every non-string cell counts as a repair in the report
        assert fixes["cells_coerced"] == 4

    def test_invalid_type_reset(self):
        payload = {
            "columns": [{"name": "a", "type": "quantum"}],
            "rows": [["1"]],
        }
        fixed, fixes = sanitize_table_payload(payload)
        assert fixed["columns"][0]["type"] == "text"
        assert fixes["column_types_reset"] == 1

    def test_non_dict_passthrough(self):
        fixed, fixes = sanitize_table_payload("not a table")
        assert fixed == "not a table"
        assert fixes == {}

    def test_repaired_payload_parses(self):
        from repro.tables.serialize import table_from_json

        payload = {
            "columns": [{"name": "a"}, {"name": "a"}, {"name": ""}],
            "rows": [["1"], ["1", "2", "3", "4"], [None, 5, "x"]],
            "row_name_column": "ghost",
        }
        fixed, _ = sanitize_table_payload(payload)
        table = table_from_json(fixed)
        assert table.n_columns == 3
        assert table.n_rows == 3


class TestReport:
    def test_changed_flag(self):
        report = SanitizeReport()
        assert not report.changed
        report.bump("cells", "repaired")
        assert report.changed

    def test_merge_structure(self):
        report = SanitizeReport()
        report.merge_structure({"rows_padded": 2, "noop": 0})
        assert report.structure == {"rows_padded": 2}

    def test_summary_mentions_counts(self):
        report = SanitizeReport()
        report.bump("cells", "repaired", 3)
        assert "3 cell(s) repaired" in report.summary()

    def test_to_json_shape(self):
        report = SanitizeReport()
        report.bump("structure", "transposed")
        report.errors.append("boom")
        payload = report.to_json()
        assert set(payload) == {"structure", "cells", "repairs", "errors"}
        assert payload["errors"] == ["boom"]
