"""Unit tests for templates, abstraction, and the built-in pools."""

import pytest

from repro.errors import TemplateError
from repro.programs.base import ProgramKind, parse_program
from repro.templates import (
    Placeholder,
    PlaceholderKind,
    ProgramTemplate,
    abstract_program,
    dedup_templates,
    finqa_pool,
    logic2text_pool,
    pool_for_kind,
    squall_pool,
)
from repro.tables.values import ValueType


class TestProgramTemplate:
    def test_substitute(self):
        template = ProgramTemplate(
            kind=ProgramKind.SQL,
            pattern="select c1 from w where c2 = val1",
            placeholders=(
                Placeholder("c1", PlaceholderKind.COLUMN),
                Placeholder("c2", PlaceholderKind.COLUMN),
                Placeholder("val1", PlaceholderKind.VALUE, column_ref="c2"),
            ),
        )
        out = template.substitute({"c1": "a", "c2": "b", "val1": "'x'"})
        assert out == "select a from w where b = 'x'"

    def test_substitute_missing_binding(self):
        template = ProgramTemplate(
            kind=ProgramKind.SQL,
            pattern="select c1 from w",
            placeholders=(Placeholder("c1", PlaceholderKind.COLUMN),),
        )
        with pytest.raises(TemplateError):
            template.substitute({})

    def test_substitution_does_not_clobber_prefixes(self):
        """val10 must not be rewritten when substituting val1."""
        template = ProgramTemplate(
            kind=ProgramKind.LOGIC,
            pattern="eq { val1 ; val10 }",
            placeholders=(
                Placeholder("val1", PlaceholderKind.ROWNAME),
                Placeholder("val10", PlaceholderKind.ROWNAME),
            ),
        )
        out = template.substitute({"val1": "A", "val10": "B"})
        assert out == "eq { A ; B }"

    def test_unknown_placeholder_in_pattern_rejected(self):
        with pytest.raises(TemplateError):
            ProgramTemplate(
                kind=ProgramKind.SQL,
                pattern="select c1 from w",
                placeholders=(Placeholder("c9", PlaceholderKind.COLUMN),),
            )

    def test_value_placeholder_requires_column_ref(self):
        with pytest.raises(TemplateError):
            Placeholder("val1", PlaceholderKind.VALUE)

    def test_dangling_column_ref_rejected(self):
        with pytest.raises(TemplateError):
            ProgramTemplate(
                kind=ProgramKind.SQL,
                pattern="select c1 from w where c1 = val1",
                placeholders=(
                    Placeholder("c1", PlaceholderKind.COLUMN),
                    Placeholder("val1", PlaceholderKind.VALUE, column_ref="cX"),
                ),
            )


class TestAbstraction:
    def test_sql_abstraction(self, players_table):
        program = parse_program(
            "select player from w where team = 'hawks' "
            "order by points desc limit 1",
            "sql",
        )
        template = abstract_program(program, players_table)
        assert template.pattern == (
            "select c1 from w where c2 = val1 order by c3 desc limit 1"
        )
        value = template.value_placeholders[0]
        assert value.column_ref == "c2"

    def test_sql_abstraction_records_types(self, players_table):
        program = parse_program(
            "select player from w order by points desc limit 1", "sql"
        )
        template = abstract_program(program, players_table)
        by_name = {p.name: p for p in template.placeholders}
        assert by_name["c2"].value_type is ValueType.NUMBER

    def test_logic_abstraction(self, players_table):
        program = parse_program(
            "eq { hop { filter_eq { all_rows ; team ; hawks } ; player } ; "
            "john smith }",
            "logic",
        )
        template = abstract_program(program, players_table)
        assert "filter_eq { all_rows ; c1 ; val1 }" in template.pattern
        assert template.meta.get("result_slot") is not None

    def test_arith_abstraction_shares_rownames(self, finance_table):
        program = parse_program(
            "subtract ( the revenue of 2019 , the revenue of 2018 )", "arith"
        )
        template = abstract_program(program, finance_table)
        # the same row name maps to one placeholder used twice
        assert template.pattern.count("val1") == 2
        assert len(template.column_placeholders) == 2

    def test_abstract_then_instantiate_parses(self, players_table):
        program = parse_program(
            "select count ( * ) from w where team = 'hawks'", "sql"
        )
        template = abstract_program(program, players_table)
        rebuilt = template.substitute({"c1": "[team]", "val1": "'hawks'"})
        assert parse_program(rebuilt, "sql").execute(players_table).denotation() == ["2"]

    def test_dedup(self, players_table):
        p1 = parse_program("select player from w where team = 'hawks'", "sql")
        p2 = parse_program("select team from w where player = 'bo chen'", "sql")
        t1 = abstract_program(p1, players_table)
        t2 = abstract_program(p2, players_table)
        assert len(dedup_templates([t1, t2, t1])) == 1  # same structure


class TestPools:
    @pytest.mark.parametrize(
        "pool,kind",
        [
            (squall_pool(), ProgramKind.SQL),
            (logic2text_pool(), ProgramKind.LOGIC),
            (finqa_pool(), ProgramKind.ARITH),
        ],
    )
    def test_pool_kinds(self, pool, kind):
        assert pool.kind is kind
        assert len(pool) >= 15

    def test_sql_pool_covers_paper_reasoning_types(self):
        categories = set(squall_pool().categories)
        for required in ("lookup", "superlative", "count", "aggregation",
                         "diff", "conjunction", "comparative"):
            assert required in categories, required

    def test_logic_pool_covers_paper_reasoning_types(self):
        categories = set(logic2text_pool().categories)
        for required in ("count", "superlative", "comparative", "aggregation",
                         "majority", "unique", "ordinal"):
            assert required in categories, required

    def test_finqa_pool_covers_operations(self):
        patterns = " ".join(t.pattern for t in finqa_pool())
        for op in ("add", "subtract", "multiply", "divide", "greater",
                   "table_max", "table_min", "table_sum", "table_average"):
            assert op in patterns, op

    def test_pool_for_kind(self):
        assert pool_for_kind("sql").name == "squall"
        assert pool_for_kind(ProgramKind.LOGIC).name == "logic2text"
        assert pool_for_kind("arith").name == "finqa"

    def test_templates_unique(self):
        for pool in (squall_pool(), logic2text_pool(), finqa_pool()):
            signatures = [t.signature() for t in pool]
            assert len(signatures) == len(set(signatures)), pool.name

    def test_by_category(self):
        pool = logic2text_pool()
        for template in pool.by_category("majority"):
            assert template.category == "majority"
