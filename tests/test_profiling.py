"""Unit tests for the hot-path profiler and the report's profile section."""

import pytest

from repro import profiling
from repro.profiling import (
    PROFILE_PREFIX,
    Profiler,
    profile_section,
    render_profile,
)
from repro.telemetry import (
    REPORT_SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    Telemetry,
    build_report,
    validate_report,
)


@pytest.fixture
def installed():
    """Profiling enabled for the duration of one test, then torn down."""
    was_active = profiling.active()
    profiler = profiling.install()
    profiler.reset()
    yield profiler
    if was_active is None:
        profiling.uninstall()
    else:
        was_active.reset()


class TestProfiler:
    def test_records_seconds_and_calls(self):
        profiler = Profiler()
        with profiler.stage("sampler"):
            pass
        with profiler.stage("sampler"):
            pass
        stats = profiler.stats()
        seconds, calls = stats["sampler"]
        assert calls == 2
        assert seconds >= 0.0

    def test_nested_stages_get_path_keys(self):
        profiler = Profiler()
        with profiler.stage("sampler"):
            with profiler.stage("executor"):
                pass
        with profiler.stage("executor"):
            pass
        stats = profiler.stats()
        assert set(stats) == {"sampler", "sampler/executor", "executor"}
        assert stats["sampler/executor"][1] == 1
        assert stats["executor"][1] == 1

    def test_reentrant_nesting(self):
        profiler = Profiler()
        with profiler.stage("a"):
            with profiler.stage("a"):
                pass
        assert set(profiler.stats()) == {"a", "a/a"}

    def test_exception_still_pops_frame(self):
        profiler = Profiler()
        with pytest.raises(RuntimeError):
            with profiler.stage("outer"):
                raise RuntimeError("boom")
        with profiler.stage("after"):
            pass
        stats = profiler.stats()
        assert "after" in stats  # not "outer/after": the stack unwound
        assert "outer" in stats

    def test_reset_clears(self):
        profiler = Profiler()
        with profiler.stage("x"):
            pass
        profiler.reset()
        assert profiler.stats() == {}

    def test_flush_into_moves_stats_to_telemetry(self):
        profiler = Profiler()
        with profiler.stage("sampler"):
            with profiler.stage("executor"):
                pass
        telemetry = Telemetry()
        profiler.flush_into(telemetry)
        timers = telemetry.snapshot()["timers"]
        assert PROFILE_PREFIX + "sampler" in timers
        assert PROFILE_PREFIX + "sampler/executor" in timers
        assert profiler.stats() == {}  # moved, not copied

    def test_flushes_merge_additively(self):
        telemetry = Telemetry()
        profiler = Profiler()
        for _ in range(3):
            with profiler.stage("s"):
                pass
            profiler.flush_into(telemetry)
        timers = telemetry.snapshot()["timers"]
        assert timers[PROFILE_PREFIX + "s"]["calls"] == 3


class TestModuleSwitch:
    def test_stage_is_noop_when_uninstalled(self):
        if profiling.active() is not None:
            pytest.skip("profiling externally enabled")
        with profiling.stage("anything"):
            pass
        profiling.flush_into(Telemetry())  # no-op, must not raise

    def test_install_activates_and_env_propagates(self, installed):
        import os

        assert profiling.active() is installed
        assert os.environ.get(profiling.ENV_FLAG)
        with profiling.stage("probe"):
            pass
        assert "probe" in installed.stats()

    def test_uninstall_drops_state(self):
        import os

        profiling.install()
        profiling.uninstall()
        assert profiling.active() is None
        assert profiling.ENV_FLAG not in os.environ


class TestProfileSection:
    def _timers(self, **seconds):
        return {
            PROFILE_PREFIX + path: {"seconds": value, "calls": 1}
            for path, value in seconds.items()
        }

    def test_extracts_only_profile_timers(self):
        timers = self._timers(sampler=1.0)
        timers["generate"] = {"seconds": 9.0, "calls": 1}
        section = profile_section(timers)
        assert section["enabled"] is True
        assert set(section["stages"]) == {"sampler"}

    def test_disabled_when_no_stages(self):
        section = profile_section({"generate": {"seconds": 1.0, "calls": 1}})
        assert section == {"enabled": False, "stages": {}}

    def test_self_seconds_subtracts_direct_children_only(self):
        section = profile_section(
            self._timers(
                **{
                    "sampler": 1.0,
                    "sampler/executor": 0.6,
                    "sampler/executor/parse": 0.2,
                }
            )
        )
        stages = section["stages"]
        # grandchild time is inside the child's total already
        assert stages["sampler"]["self_seconds"] == pytest.approx(0.4)
        assert stages["sampler/executor"]["self_seconds"] == pytest.approx(0.4)
        assert stages["sampler/executor/parse"]["self_seconds"] == (
            pytest.approx(0.2)
        )

    def test_self_seconds_never_negative(self):
        section = profile_section(
            self._timers(**{"a": 0.1, "a/b": 0.5})
        )
        assert section["stages"]["a"]["self_seconds"] == 0.0

    def test_render_ranks_by_self_time(self):
        section = profile_section(
            self._timers(**{"cold": 0.1, "hot": 5.0})
        )
        rendered = render_profile(section, top=10)
        assert rendered.index("hot") < rendered.index("cold")

    def test_render_handles_empty(self):
        assert "no stages" in render_profile({"enabled": False, "stages": {}})


class TestReportV3:
    def _run_report(self, profiled=True):
        telemetry = Telemetry()
        if profiled:
            profiler = Profiler()
            with profiler.stage("sampler"):
                pass
            profiler.flush_into(telemetry)
        return build_report(telemetry, seed=0, workers=1, contexts=0)

    def test_build_report_carries_profile_section(self):
        report = self._run_report()
        assert report["schema_version"] == REPORT_SCHEMA_VERSION
        assert report["profile"]["enabled"] is True
        assert "sampler" in report["profile"]["stages"]

    def test_unprofiled_report_has_disabled_section(self):
        report = self._run_report(profiled=False)
        assert report["profile"] == {"enabled": False, "stages": {}}
        assert validate_report(report) == []

    def test_profile_timers_not_duplicated_in_timers(self):
        report = self._run_report()
        assert not any(
            name.startswith(PROFILE_PREFIX) for name in report["timers"]
        )

    def test_validator_accepts_current_version(self):
        assert validate_report(self._run_report()) == []

    def test_validator_accepts_v3_without_validation(self):
        report = self._run_report()
        report["schema_version"] = 3
        del report["validation"]
        assert 3 in SUPPORTED_SCHEMA_VERSIONS
        assert validate_report(report) == []

    def test_validator_accepts_v2_without_profile(self):
        report = self._run_report(profiled=False)
        report["schema_version"] = 2
        del report["profile"]
        assert 2 in SUPPORTED_SCHEMA_VERSIONS
        assert validate_report(report) == []

    def test_validator_rejects_unknown_version(self):
        report = self._run_report()
        report["schema_version"] = 99
        assert any("schema_version" in p for p in validate_report(report))

    def test_validator_rejects_missing_profile_on_v3(self):
        report = self._run_report()
        del report["profile"]
        assert any("profile" in p for p in validate_report(report))

    def test_validator_rejects_malformed_stage_entries(self):
        report = self._run_report()
        report["profile"]["stages"]["sampler"] = {"seconds": "fast"}
        assert any("sampler" in p for p in validate_report(report))
        report["profile"]["stages"] = ["not", "a", "dict"]
        assert any("stages" in p for p in validate_report(report))
