"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.errors import ProgramParseError
from repro.programs.sql import (
    Aggregate,
    ArithmeticItem,
    ColumnItem,
    CompOp,
    TokenKind,
    parse_sql,
    tokenize_sql,
)


class TestLexer:
    def test_keywords_lowercased(self):
        tokens = tokenize_sql("SELECT a FROM w")
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[0].text == "select"

    def test_bracketed_identifier(self):
        tokens = tokenize_sql("select [total deputies] from w")
        assert tokens[1].kind is TokenKind.IDENT
        assert tokens[1].text == "total deputies"

    def test_quoted_string_with_escape(self):
        tokens = tokenize_sql("select a from w where b = 'o''brien'")
        strings = [t for t in tokens if t.kind is TokenKind.STRING]
        assert strings[0].text == "o'brien"

    def test_numbers(self):
        tokens = tokenize_sql("limit 10")
        assert tokens[1].kind is TokenKind.NUMBER
        assert tokens[1].text == "10"

    def test_negative_number(self):
        tokens = tokenize_sql("where a = -5")
        assert any(t.text == "-5" for t in tokens)

    def test_neq_aliases(self):
        assert any(t.text == "!=" for t in tokenize_sql("a <> b"))
        assert any(t.text == "!=" for t in tokenize_sql("a != b"))

    def test_junk_raises_with_position(self):
        with pytest.raises(ProgramParseError) as exc:
            tokenize_sql("select # from w")
        assert exc.value.position == 7

    def test_eof_token(self):
        assert tokenize_sql("select a from w")[-1].kind is TokenKind.EOF


class TestParser:
    def test_simple_select(self):
        program = parse_sql("select player from w")
        assert len(program.query.items) == 1
        assert program.query.items[0].column == "player"

    def test_where_condition(self):
        program = parse_sql("select a from w where b = 'x'")
        condition = program.query.conditions[0]
        assert condition.column == "b"
        assert condition.op is CompOp.EQ
        assert condition.literal.raw == "x"

    def test_multiple_conditions(self):
        program = parse_sql("select a from w where b = 1 and c > 2")
        assert len(program.query.conditions) == 2
        assert program.query.conditions[1].op is CompOp.GT

    def test_order_by_desc_limit(self):
        program = parse_sql("select a from w order by b desc limit 3")
        assert program.query.order.column == "b"
        assert program.query.order.descending
        assert program.query.limit == 3

    def test_order_by_default_asc(self):
        program = parse_sql("select a from w order by b")
        assert not program.query.order.descending

    def test_aggregates(self):
        for name, member in (
            ("count", Aggregate.COUNT),
            ("sum", Aggregate.SUM),
            ("avg", Aggregate.AVG),
            ("min", Aggregate.MIN),
            ("max", Aggregate.MAX),
        ):
            program = parse_sql(f"select {name}(a) from w")
            item = program.query.items[0]
            assert item.aggregate is member

    def test_count_star(self):
        program = parse_sql("select count(*) from w")
        assert program.query.items[0].column == "*"

    def test_count_distinct(self):
        program = parse_sql("select count(distinct a) from w")
        assert program.query.items[0].distinct

    def test_multi_select(self):
        program = parse_sql("select a , b from w")
        assert [item.column for item in program.query.items] == ["a", "b"]

    def test_arithmetic_item(self):
        program = parse_sql("select max(a) - min(a) from w")
        item = program.query.items[0]
        assert isinstance(item, ArithmeticItem)
        assert item.op == "-"

    def test_referenced_columns(self):
        program = parse_sql(
            "select a from w where b = 1 order by c desc limit 1"
        )
        assert program.query.referenced_columns == ["a", "b", "c"]

    def test_round_trip_via_tokens(self):
        source = "select count ( * ) from w where a = 'x' and b > 3"
        program = parse_sql(source)
        reparsed = parse_sql(" ".join(program.tokens()))
        assert reparsed.query == program.query

    @pytest.mark.parametrize(
        "bad",
        [
            "select",
            "select from w",
            "select a where b = 1",
            "select a from w where b",
            "select a from w limit x",
            "select a from w extra",
            "select a from w where b ~ 1",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ProgramParseError):
            parse_sql(bad)


class TestProgramInterface:
    def test_kind(self):
        from repro.programs.base import ProgramKind

        assert parse_sql("select a from w").kind is ProgramKind.SQL

    def test_equality_and_hash(self):
        a = parse_sql("select a from w where b = 1")
        b = parse_sql("select  a  from w where b = 1")
        assert a == b
        assert hash(a) == hash(b)

    def test_canonical(self):
        program = parse_sql("select a from w")
        assert program.canonical() == "select a from w"
