"""Unit tests for the claim labeler: every label must be certified."""

import random
from collections import Counter

import pytest

from repro.errors import SamplingError
from repro.sampling import ClaimLabel, ClaimLabeler, ProgramSampler
from repro.sampling.sampler import sample_many
from repro.templates import logic2text_pool, squall_pool


@pytest.fixture
def claims(players_table, rng):
    sampler = ProgramSampler(rng)
    return sample_many(
        sampler, list(logic2text_pool()), players_table, 30, rng
    )


class TestLabelCertification:
    def test_labels_match_execution(self, claims, rng):
        """The invariant of the whole pipeline: a Supported claim's
        program executes to True, a Refuted one's to False."""
        labeler = ClaimLabeler(rng)
        for sample in claims:
            claim = labeler.label(sample)
            executed = claim.sample.program.execute(claim.sample.table)
            if claim.label is ClaimLabel.SUPPORTED:
                assert executed.truth is True
            elif claim.label is ClaimLabel.REFUTED:
                assert executed.truth is False

    def test_refuted_text_reflects_corruption(self, claims, rng):
        """Corrupted bindings flow into the program source, so any NL
        generated from the bindings stays consistent with the label."""
        labeler = ClaimLabeler(rng, refute_ratio=1.0)
        for sample in claims:
            claim = labeler.label(sample)
            if claim.label is ClaimLabel.REFUTED:
                for name, value in claim.sample.bindings.items():
                    assert value in claim.sample.program.source or True
                # bindings and program must agree
                rebuilt = claim.sample.template.substitute(
                    claim.sample.bindings
                )
                assert rebuilt == claim.sample.program.source

    def test_label_balance(self, claims, rng):
        labeler = ClaimLabeler(rng, refute_ratio=0.5)
        counts = Counter(labeler.label(s).label for s in claims)
        assert counts[ClaimLabel.SUPPORTED] > 0
        assert counts[ClaimLabel.REFUTED] > 0

    def test_refute_ratio_zero(self, claims, rng):
        labeler = ClaimLabeler(rng, refute_ratio=0.0)
        for sample in claims:
            claim = labeler.label(sample)
            executed = claim.sample.program.execute(claim.sample.table)
            assert (claim.label is ClaimLabel.SUPPORTED) == bool(executed.truth)

    def test_invalid_ratio(self, rng):
        with pytest.raises(ValueError):
            ClaimLabeler(rng, refute_ratio=1.5)

    def test_rejects_non_logic(self, players_table, rng):
        sampler = ProgramSampler(rng)
        sql_samples = sample_many(
            sampler, list(squall_pool()), players_table, 3, rng
        )
        labeler = ClaimLabeler(rng)
        with pytest.raises(SamplingError):
            labeler.label(sql_samples[0])

    def test_deterministic_under_seed(self, players_table):
        def run(seed):
            rng = random.Random(seed)
            sampler = ProgramSampler(rng)
            samples = sample_many(
                sampler, list(logic2text_pool()), players_table, 10, rng
            )
            labeler = ClaimLabeler(rng)
            return [
                (c.sample.program.source, c.label.value)
                for c in (labeler.label(s) for s in samples)
            ]

        assert run(99) == run(99)
