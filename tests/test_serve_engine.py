"""Tests for the micro-batching inference engine."""

import threading

import pytest

from repro.errors import EngineStoppedError, OverloadedError, ServeError
from repro.serve import (
    EngineConfig,
    InferenceEngine,
    InferenceRequest,
    TASK_QA,
    TASK_VERIFY,
)
from repro.telemetry import Telemetry

from .conftest import qa_lookup_samples, verification_samples


class _ExplodingVerifier:
    """Picklable stand-in whose batch predict always fails."""

    def predict(self, samples):
        raise RuntimeError("boom")


@pytest.fixture
def engine(tiny_qa_model, tiny_verifier):
    with InferenceEngine(
        {TASK_QA: tiny_qa_model, TASK_VERIFY: tiny_verifier},
        EngineConfig(workers=2, max_batch_size=8),
    ) as running:
        yield running


class TestCorrectness:
    def test_qa_matches_direct_predict(
        self, engine, tiny_qa_model, serve_context
    ):
        for sample in qa_lookup_samples(serve_context):
            response = engine.infer(TASK_QA, sample.sentence, serve_context)
            assert response.ok, response.error
            assert response.answer == tiny_qa_model.predict(sample)
            assert response.task == TASK_QA
            assert response.timing is not None

    def test_verify_matches_direct_predict(
        self, engine, tiny_verifier, serve_context
    ):
        samples = verification_samples(serve_context)
        expected = tiny_verifier.predict(samples)
        for sample, label in zip(samples, expected):
            response = engine.infer(TASK_VERIFY, sample.sentence, serve_context)
            assert response.ok, response.error
            assert response.label == label.value

    def test_unknown_task_is_typed(self, engine, serve_context):
        with pytest.raises(ServeError):
            InferenceRequest(
                id="x", task="summarize", sentence="hi", context=serve_context
            )

    def test_unserved_task_is_typed(self, tiny_qa_model, serve_context):
        with InferenceEngine({TASK_QA: tiny_qa_model}) as engine:
            with pytest.raises(ServeError):
                engine.infer(TASK_VERIFY, "claim", serve_context)


class TestBatching:
    def test_queued_requests_coalesce(self, tiny_verifier, serve_context):
        """Requests submitted before start() land in one micro-batch."""
        engine = InferenceEngine(
            {TASK_VERIFY: tiny_verifier},
            EngineConfig(workers=1, max_batch_size=8, cache_size=0),
        )
        claims = [s.sentence for s in verification_samples(serve_context)[:6]]
        pendings = [
            engine.submit(InferenceRequest(
                id=f"b{i}", task=TASK_VERIFY, sentence=claim,
                context=serve_context,
            ))
            for i, claim in enumerate(claims)
        ]
        engine.start()
        responses = [p.result(10.0) for p in pendings]
        engine.stop()
        assert all(r.ok for r in responses)
        assert responses[0].timing.batch_size == 6
        stats = engine.stats()
        assert stats["batches"]["max_size"] == 6
        assert stats["batches"]["count"] == 1

    def test_batch_failure_fails_each_request(self, serve_context):
        engine = InferenceEngine(
            {TASK_VERIFY: _ExplodingVerifier()},
            EngineConfig(workers=1, cache_size=0),
        )
        with engine:
            response = engine.infer(TASK_VERIFY, "a claim", serve_context)
        assert not response.ok
        assert "boom" in response.error
        stats = engine.stats()
        assert stats["errors"] == 1
        assert stats["reconciles"]


class TestAdmission:
    def test_overload_rejects_with_retry_after(
        self, tiny_verifier, serve_context
    ):
        engine = InferenceEngine(
            {TASK_VERIFY: tiny_verifier},
            EngineConfig(workers=1, queue_limit=2, cache_size=0),
        )
        # Not started: nothing drains, so the queue fills deterministically.
        for i in range(2):
            engine.submit(InferenceRequest(
                id=f"q{i}", task=TASK_VERIFY, sentence=f"claim {i}",
                context=serve_context,
            ))
        with pytest.raises(OverloadedError) as caught:
            engine.submit(InferenceRequest(
                id="q2", task=TASK_VERIFY, sentence="claim 2",
                context=serve_context,
            ))
        assert caught.value.retry_after > 0
        stats = engine.stats()
        assert stats["rejected"] == 1
        assert stats["accepted"] == 3
        assert stats["in_flight"] == 2
        assert stats["reconciles"]
        engine.start()
        engine.stop(drain=True)
        assert engine.stats()["completed"] == 2

    def test_submit_after_stop_is_typed(self, tiny_verifier, serve_context):
        engine = InferenceEngine({TASK_VERIFY: tiny_verifier})
        engine.start()
        engine.stop()
        with pytest.raises(EngineStoppedError):
            engine.infer(TASK_VERIFY, "too late", serve_context)
        assert engine.stats()["reconciles"]

    def test_deadline_expired_is_error_response(
        self, tiny_verifier, serve_context
    ):
        engine = InferenceEngine(
            {TASK_VERIFY: tiny_verifier},
            EngineConfig(workers=1, cache_size=0),
        )
        pending = engine.submit(InferenceRequest(
            id="late", task=TASK_VERIFY, sentence="a claim",
            context=serve_context, deadline_s=1e-9,
        ))
        engine.start()
        response = pending.result(10.0)
        engine.stop()
        assert not response.ok
        assert response.error.startswith("deadline_exceeded")
        stats = engine.stats()
        assert stats["deadline_expired"] == 1
        assert stats["reconciles"]


class TestCache:
    def test_repeat_question_hits_cache(self, engine, serve_context):
        first = engine.infer(TASK_QA, "what is the points of bo chen ?",
                             serve_context)
        second = engine.infer(TASK_QA, "what is the points of bo chen ?",
                              serve_context)
        # Token-stream normalization: casing/spacing don't miss.
        third = engine.infer(TASK_QA, "What is  the POINTS of bo chen?",
                             serve_context)
        assert not first.cached
        assert second.cached and second.answer == first.answer
        assert third.cached and third.answer == first.answer
        assert engine.stats()["cache"]["hits"] == 2

    def test_cache_disabled(self, tiny_qa_model, serve_context):
        with InferenceEngine(
            {TASK_QA: tiny_qa_model}, EngineConfig(cache_size=0)
        ) as engine:
            engine.infer(TASK_QA, "what is the points of bo chen ?",
                         serve_context)
            repeat = engine.infer(TASK_QA, "what is the points of bo chen ?",
                                  serve_context)
        assert not repeat.cached
        assert engine.stats()["cache"]["hits"] == 0


class TestLifecycle:
    def test_drain_completes_everything(self, tiny_verifier, serve_context):
        engine = InferenceEngine(
            {TASK_VERIFY: tiny_verifier},
            EngineConfig(workers=2, cache_size=0),
        )
        pendings = [
            engine.submit(InferenceRequest(
                id=f"d{i}", task=TASK_VERIFY, sentence=f"claim number {i}",
                context=serve_context,
            ))
            for i in range(20)
        ]
        engine.start()
        engine.stop(drain=True)
        assert all(p.done() for p in pendings)
        assert all(p.result(0).ok for p in pendings)
        stats = engine.stats()
        assert stats["completed"] == 20
        assert stats["in_flight"] == 0
        assert stats["reconciles"]

    def test_no_drain_fails_fast_not_hangs(self, tiny_verifier, serve_context):
        engine = InferenceEngine(
            {TASK_VERIFY: tiny_verifier}, EngineConfig(cache_size=0)
        )
        pendings = [
            engine.submit(InferenceRequest(
                id=f"n{i}", task=TASK_VERIFY, sentence=f"claim {i}",
                context=serve_context,
            ))
            for i in range(5)
        ]
        engine.stop(drain=False)
        for pending in pendings:
            response = pending.result(1.0)
            assert not response.ok
            assert response.error.startswith("stopped")
        stats = engine.stats()
        assert stats["rejected"] == 5
        assert stats["reconciles"]

    def test_reconciles_under_concurrent_load(
        self, tiny_qa_model, tiny_verifier, serve_context
    ):
        telemetry = Telemetry()
        engine = InferenceEngine(
            {TASK_QA: tiny_qa_model, TASK_VERIFY: tiny_verifier},
            EngineConfig(workers=2, queue_limit=8, cache_size=0),
            telemetry,
        )
        engine.start()
        outcomes = {"completed": 0, "rejected": 0}
        lock = threading.Lock()

        def client(offset: int) -> None:
            for i in range(25):
                task = TASK_QA if (offset + i) % 2 else TASK_VERIFY
                sentence = (
                    f"what is the points of bo chen ?"
                    if task == TASK_QA else f"claim {offset} {i}"
                )
                try:
                    engine.infer(task, sentence, serve_context)
                    key = "completed"
                except OverloadedError:
                    key = "rejected"
                with lock:
                    outcomes[key] += 1

        threads = [
            threading.Thread(target=client, args=(k,)) for k in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        engine.stop(drain=True)
        stats = engine.stats()
        assert stats["accepted"] == 100
        assert stats["completed"] == outcomes["completed"]
        assert stats["rejected"] == outcomes["rejected"]
        assert stats["in_flight"] == 0
        assert stats["reconciles"]
        # telemetry mirrors the engine counters
        counters = telemetry.snapshot()["counters"]["serve"]
        assert counters["accepted"] == 100
        assert counters["completed"] == stats["completed"]
