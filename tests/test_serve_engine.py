"""Tests for the micro-batching inference engine."""

import threading

import pytest

from repro.errors import EngineStoppedError, OverloadedError, ServeError
from repro.serve import (
    EngineConfig,
    InferenceEngine,
    InferenceRequest,
    TASK_QA,
    TASK_VERIFY,
)
from repro.telemetry import Telemetry

from .conftest import qa_lookup_samples, verification_samples

pytestmark = pytest.mark.timeout(300)


class _ExplodingVerifier:
    """Picklable stand-in whose batch predict always fails."""

    def predict(self, samples):
        raise RuntimeError("boom")


@pytest.fixture
def engine(tiny_qa_model, tiny_verifier):
    with InferenceEngine(
        {TASK_QA: tiny_qa_model, TASK_VERIFY: tiny_verifier},
        EngineConfig(workers=2, max_batch_size=8),
    ) as running:
        yield running


class TestCorrectness:
    def test_qa_matches_direct_predict(
        self, engine, tiny_qa_model, serve_context
    ):
        for sample in qa_lookup_samples(serve_context):
            response = engine.infer(TASK_QA, sample.sentence, serve_context)
            assert response.ok, response.error
            assert response.answer == tiny_qa_model.predict(sample)
            assert response.task == TASK_QA
            assert response.timing is not None

    def test_verify_matches_direct_predict(
        self, engine, tiny_verifier, serve_context
    ):
        samples = verification_samples(serve_context)
        expected = tiny_verifier.predict(samples)
        for sample, label in zip(samples, expected):
            response = engine.infer(TASK_VERIFY, sample.sentence, serve_context)
            assert response.ok, response.error
            assert response.label == label.value

    def test_unknown_task_is_typed(self, engine, serve_context):
        with pytest.raises(ServeError):
            InferenceRequest(
                id="x", task="summarize", sentence="hi", context=serve_context
            )

    def test_unserved_task_is_typed(self, tiny_qa_model, serve_context):
        with InferenceEngine({TASK_QA: tiny_qa_model}) as engine:
            with pytest.raises(ServeError):
                engine.infer(TASK_VERIFY, "claim", serve_context)


class TestBatching:
    def test_queued_requests_coalesce(self, tiny_verifier, serve_context):
        """Requests submitted before start() land in one micro-batch."""
        engine = InferenceEngine(
            {TASK_VERIFY: tiny_verifier},
            EngineConfig(workers=1, max_batch_size=8, cache_size=0),
        )
        claims = [s.sentence for s in verification_samples(serve_context)[:6]]
        pendings = [
            engine.submit(InferenceRequest(
                id=f"b{i}", task=TASK_VERIFY, sentence=claim,
                context=serve_context,
            ))
            for i, claim in enumerate(claims)
        ]
        engine.start()
        responses = [p.result(10.0) for p in pendings]
        engine.stop()
        assert all(r.ok for r in responses)
        assert responses[0].timing.batch_size == 6
        stats = engine.stats()
        assert stats["batches"]["max_size"] == 6
        assert stats["batches"]["count"] == 1

    def test_batch_failure_fails_each_request(self, serve_context):
        engine = InferenceEngine(
            {TASK_VERIFY: _ExplodingVerifier()},
            EngineConfig(workers=1, cache_size=0),
        )
        with engine:
            response = engine.infer(TASK_VERIFY, "a claim", serve_context)
        assert not response.ok
        assert "boom" in response.error
        stats = engine.stats()
        assert stats["errors"] == 1
        assert stats["reconciles"]


class TestAdmission:
    def test_overload_rejects_with_retry_after(
        self, tiny_verifier, serve_context
    ):
        engine = InferenceEngine(
            {TASK_VERIFY: tiny_verifier},
            EngineConfig(workers=1, queue_limit=2, cache_size=0),
        )
        # Not started: nothing drains, so the queue fills deterministically.
        for i in range(2):
            engine.submit(InferenceRequest(
                id=f"q{i}", task=TASK_VERIFY, sentence=f"claim {i}",
                context=serve_context,
            ))
        with pytest.raises(OverloadedError) as caught:
            engine.submit(InferenceRequest(
                id="q2", task=TASK_VERIFY, sentence="claim 2",
                context=serve_context,
            ))
        assert caught.value.retry_after > 0
        stats = engine.stats()
        assert stats["rejected"] == 1
        assert stats["accepted"] == 3
        assert stats["in_flight"] == 2
        assert stats["reconciles"]
        engine.start()
        engine.stop(drain=True)
        assert engine.stats()["completed"] == 2

    def test_submit_after_stop_is_typed(self, tiny_verifier, serve_context):
        engine = InferenceEngine({TASK_VERIFY: tiny_verifier})
        engine.start()
        engine.stop()
        with pytest.raises(EngineStoppedError):
            engine.infer(TASK_VERIFY, "too late", serve_context)
        assert engine.stats()["reconciles"]

    def test_deadline_expired_is_error_response(
        self, tiny_verifier, serve_context
    ):
        engine = InferenceEngine(
            {TASK_VERIFY: tiny_verifier},
            EngineConfig(workers=1, cache_size=0),
        )
        pending = engine.submit(InferenceRequest(
            id="late", task=TASK_VERIFY, sentence="a claim",
            context=serve_context, deadline_s=1e-9,
        ))
        engine.start()
        response = pending.result(10.0)
        engine.stop()
        assert not response.ok
        assert response.error.startswith("deadline_exceeded")
        stats = engine.stats()
        assert stats["deadline_expired"] == 1
        assert stats["reconciles"]


class TestCache:
    def test_repeat_question_hits_cache(self, engine, serve_context):
        first = engine.infer(TASK_QA, "what is the points of bo chen ?",
                             serve_context)
        second = engine.infer(TASK_QA, "what is the points of bo chen ?",
                              serve_context)
        # Token-stream normalization: casing/spacing don't miss.
        third = engine.infer(TASK_QA, "What is  the POINTS of bo chen?",
                             serve_context)
        assert not first.cached
        assert second.cached and second.answer == first.answer
        assert third.cached and third.answer == first.answer
        assert engine.stats()["cache"]["hits"] == 2

    def test_cache_disabled(self, tiny_qa_model, serve_context):
        with InferenceEngine(
            {TASK_QA: tiny_qa_model}, EngineConfig(cache_size=0)
        ) as engine:
            engine.infer(TASK_QA, "what is the points of bo chen ?",
                         serve_context)
            repeat = engine.infer(TASK_QA, "what is the points of bo chen ?",
                                  serve_context)
        assert not repeat.cached
        assert engine.stats()["cache"]["hits"] == 0


class TestLifecycle:
    def test_drain_completes_everything(self, tiny_verifier, serve_context):
        engine = InferenceEngine(
            {TASK_VERIFY: tiny_verifier},
            EngineConfig(workers=2, cache_size=0),
        )
        pendings = [
            engine.submit(InferenceRequest(
                id=f"d{i}", task=TASK_VERIFY, sentence=f"claim number {i}",
                context=serve_context,
            ))
            for i in range(20)
        ]
        engine.start()
        engine.stop(drain=True)
        assert all(p.done() for p in pendings)
        assert all(p.result(0).ok for p in pendings)
        stats = engine.stats()
        assert stats["completed"] == 20
        assert stats["in_flight"] == 0
        assert stats["reconciles"]

    def test_no_drain_fails_fast_not_hangs(self, tiny_verifier, serve_context):
        engine = InferenceEngine(
            {TASK_VERIFY: tiny_verifier}, EngineConfig(cache_size=0)
        )
        pendings = [
            engine.submit(InferenceRequest(
                id=f"n{i}", task=TASK_VERIFY, sentence=f"claim {i}",
                context=serve_context,
            ))
            for i in range(5)
        ]
        engine.stop(drain=False)
        for pending in pendings:
            response = pending.result(1.0)
            assert not response.ok
            assert response.error.startswith("stopped")
        stats = engine.stats()
        assert stats["rejected"] == 5
        assert stats["reconciles"]

    def test_reconciles_under_concurrent_load(
        self, tiny_qa_model, tiny_verifier, serve_context
    ):
        telemetry = Telemetry()
        engine = InferenceEngine(
            {TASK_QA: tiny_qa_model, TASK_VERIFY: tiny_verifier},
            EngineConfig(workers=2, queue_limit=8, cache_size=0),
            telemetry,
        )
        engine.start()
        outcomes = {"completed": 0, "rejected": 0}
        lock = threading.Lock()

        def client(offset: int) -> None:
            for i in range(25):
                task = TASK_QA if (offset + i) % 2 else TASK_VERIFY
                sentence = (
                    f"what is the points of bo chen ?"
                    if task == TASK_QA else f"claim {offset} {i}"
                )
                try:
                    engine.infer(task, sentence, serve_context)
                    key = "completed"
                except OverloadedError:
                    key = "rejected"
                with lock:
                    outcomes[key] += 1

        threads = [
            threading.Thread(target=client, args=(k,)) for k in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        engine.stop(drain=True)
        stats = engine.stats()
        assert stats["accepted"] == 100
        assert stats["completed"] == outcomes["completed"]
        assert stats["rejected"] == outcomes["rejected"]
        assert stats["in_flight"] == 0
        assert stats["reconciles"]
        # telemetry mirrors the engine counters
        counters = telemetry.snapshot()["counters"]["serve"]
        assert counters["accepted"] == 100
        assert counters["completed"] == stats["completed"]


class _ConstVerifier:
    """Picklable verifier stand-in with a fixed verdict."""

    def __init__(self, verdict):
        self.verdict = verdict

    def predict(self, samples):
        from repro.sampling.labeler import ClaimLabel

        return [ClaimLabel(self.verdict) for _ in samples]


class TestPercentiles:
    """Nearest-rank pins on small known windows (regression: the old
    ``int(q * n)`` index reported one rank too high — p50 of two
    samples returned the max)."""

    def test_two_sample_window_p50_is_lower_sample(self):
        from repro.serve.stats import nearest_rank_percentiles

        out = nearest_rank_percentiles([0.010, 0.020])
        assert out["p50_ms"] == 10.0  # old code said 20.0
        assert out["p95_ms"] == 20.0
        assert out["p99_ms"] == 20.0
        assert out["count"] == 2

    def test_hundred_sample_window_matches_definition(self):
        from repro.serve.stats import nearest_rank_percentiles

        out = nearest_rank_percentiles([i / 1e3 for i in range(1, 101)])
        assert out["p50_ms"] == 50.0
        assert out["p95_ms"] == 95.0
        assert out["p99_ms"] == 99.0

    def test_singleton_and_empty_windows(self):
        from repro.serve.stats import nearest_rank_percentiles

        single = nearest_rank_percentiles([0.007])
        assert single["p50_ms"] == single["p99_ms"] == 7.0
        empty = nearest_rank_percentiles([])
        assert empty == {
            "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0, "count": 0,
        }

    def test_engine_stats_use_nearest_rank(
        self, tiny_verifier, serve_context
    ):
        with InferenceEngine(
            {TASK_VERIFY: tiny_verifier}, EngineConfig(workers=1)
        ) as engine:
            for i in range(4):
                engine.infer(TASK_VERIFY, f"claim number {i}", serve_context)
            latency = engine.stats()["latency"][TASK_VERIFY]
        assert latency["count"] == 4
        # p50 of 4 samples is the 2nd order statistic — strictly below
        # the max unless all samples tie.
        assert latency["p50_ms"] <= latency["p99_ms"]


class TestReload:
    def test_swap_model_flips_id_and_answers(self, serve_context):
        engine = InferenceEngine(
            {TASK_VERIFY: _ConstVerifier("supported")},
            EngineConfig(workers=1),
        )
        engine.start()
        try:
            before = engine.infer(TASK_VERIFY, "some claim", serve_context)
            assert before.label == "supported"
            summary = engine.swap_model(
                TASK_VERIFY, _ConstVerifier("refuted")
            )
            assert summary["task"] == TASK_VERIFY
            after = engine.infer(
                TASK_VERIFY, "a different claim", serve_context
            )
            assert after.label == "refuted"
            stats = engine.stats()
            assert stats["reloads"] == 1
            assert stats["reconciles"]
        finally:
            engine.stop(drain=True)

    def test_swap_unknown_task_is_typed(self, tiny_qa_model):
        with InferenceEngine({TASK_QA: tiny_qa_model}) as engine:
            with pytest.raises(ServeError):
                engine.swap_model(TASK_VERIFY, _ConstVerifier("refuted"))

    def test_swap_wrong_task_model_is_typed(
        self, tiny_qa_model, tiny_verifier
    ):
        with InferenceEngine({TASK_QA: tiny_qa_model}) as engine:
            with pytest.raises(ServeError):
                engine.swap_model(TASK_QA, tiny_verifier)


class TestCacheFingerprint:
    """Regression: the cache used to key on ``model_id``, and every
    unregistered model shares the id ``unregistered-verify@v0`` — so a
    swap served the *old* model's cached answers."""

    def test_swap_does_not_serve_stale_cache(self, serve_context):
        engine = InferenceEngine(
            {TASK_VERIFY: _ConstVerifier("supported")},
            EngineConfig(workers=1, cache_size=64),
        )
        engine.start()
        try:
            sentence = "the exact same claim twice"
            first = engine.infer(TASK_VERIFY, sentence, serve_context)
            repeat = engine.infer(TASK_VERIFY, sentence, serve_context)
            assert first.label == repeat.label == "supported"
            assert repeat.cached
            engine.swap_model(TASK_VERIFY, _ConstVerifier("refuted"))
            fresh = engine.infer(TASK_VERIFY, sentence, serve_context)
            assert fresh.label == "refuted"  # not the stale "supported"
            assert not fresh.cached
        finally:
            engine.stop(drain=True)

    def test_distinct_unregistered_models_never_share_entries(self):
        from repro.serve.engine import _ModelSlot

        slot_a = _ModelSlot(TASK_VERIFY, _ConstVerifier("supported"))
        slot_b = _ModelSlot(TASK_VERIFY, _ConstVerifier("refuted"))
        # same display id (the original bug), different fingerprints
        assert slot_a.model_id == slot_b.model_id
        assert slot_a.fingerprint != slot_b.fingerprint


class TestRetryAfter:
    """Regression: the hint used a lifetime average, so after a reload
    to a model with a different pace it stayed stale forever."""

    def test_hint_tracks_recent_window_not_lifetime(
        self, tiny_verifier, serve_context
    ):
        engine = InferenceEngine(
            {TASK_VERIFY: tiny_verifier}, EngineConfig(workers=1)
        )
        engine.start()
        try:
            for i in range(3):
                engine.infer(TASK_VERIFY, f"warm up claim {i}", serve_context)
            with engine._cond:
                engine._queued = 10  # pretend a backlog
                organic = engine._retry_after_locked()
                # simulate history from a 100× slower model: a lifetime
                # average would be dominated by it forever; the bounded
                # window forgets once recent samples replace it.
                engine._recent_compute.clear()
                engine._recent_compute.extend([1.0] * 4)
                slow = engine._retry_after_locked()
                engine._recent_compute.clear()
                engine._recent_compute.extend([0.001] * 4)
                fast = engine._retry_after_locked()
                engine._queued = 0
            assert slow > fast
            assert fast < organic * 100  # forgot the slow history
            assert slow == 5.0  # clamped ceiling
        finally:
            engine.stop(drain=True)

    def test_swap_model_resets_window(self, serve_context):
        engine = InferenceEngine(
            {TASK_VERIFY: _ConstVerifier("supported")},
            EngineConfig(workers=1),
        )
        engine.start()
        try:
            engine.infer(TASK_VERIFY, "prime the window", serve_context)
            with engine._cond:
                assert len(engine._recent_compute) > 0
            engine.swap_model(TASK_VERIFY, _ConstVerifier("refuted"))
            with engine._cond:
                assert len(engine._recent_compute) == 0
        finally:
            engine.stop(drain=True)

    def test_empty_window_uses_default(self, tiny_verifier):
        from repro.serve.engine import _DEFAULT_RETRY_AFTER

        engine = InferenceEngine({TASK_VERIFY: tiny_verifier})
        with engine._cond:
            assert engine._retry_after_locked() == _DEFAULT_RETRY_AFTER


class TestDeadlines:
    def test_non_positive_deadline_is_typed(self, engine, serve_context):
        from repro.errors import DeadlineExceededError

        with pytest.raises(DeadlineExceededError) as caught:
            engine.infer(
                TASK_QA, "what is the points of bo chen ?", serve_context,
                deadline_s=0.0,
            )
        assert caught.value.remaining_s == 0.0
        stats = engine.stats()
        assert stats["deadline_rejected"] == 1
        assert stats["rejected"] == 1
        assert stats["reconciles"]

    def test_budget_below_p50_compute_is_rejected(
        self, engine, serve_context
    ):
        from repro.errors import DeadlineExceededError

        # warm the compute window so the p50 estimate is non-zero
        for i in range(3):
            assert engine.infer(
                TASK_QA, f"what is warm question {i} ?", serve_context
            ).ok
        with pytest.raises(DeadlineExceededError) as caught:
            engine.infer(
                TASK_QA, "what is the team of raj patel ?", serve_context,
                deadline_s=1e-9,
            )
        assert caught.value.estimate_s is not None
        assert caught.value.estimate_s > 1e-9

    def test_generous_deadline_is_admitted(self, engine, serve_context):
        response = engine.infer(
            TASK_QA, "what is the points of bo chen ?", serve_context,
            deadline_s=60.0,
        )
        assert response.ok
        assert engine.stats()["deadline_rejected"] == 0

    def test_cache_hit_ignores_deadline(self, engine, serve_context):
        from repro.errors import DeadlineExceededError

        sentence = "what is the rebounds of mike jones ?"
        assert engine.infer(TASK_QA, sentence, serve_context).ok
        # a cached answer costs nothing; even a dead budget serves it
        with pytest.raises(DeadlineExceededError):
            engine.infer(
                TASK_QA, "what is the team of raj patel ?", serve_context,
                deadline_s=0.0,
            )
        cached = engine.infer(
            TASK_QA, sentence, serve_context, deadline_s=0.0
        )
        assert cached.ok and cached.cached


class TestSlowFault:
    def test_injected_slowdown_stretches_service_time(
        self, tiny_verifier, serve_context
    ):
        import time as _time

        from repro.serve import chaos
        from repro.serve.chaos import ServeFaultPlan, ServeFaultSpec

        plan = ServeFaultPlan((
            ServeFaultSpec(kind="slow", seconds=0.25, count=1),
        ))
        with chaos.injected(plan):
            # the injector binds at construction, inside the plan
            engine = InferenceEngine(
                {TASK_VERIFY: tiny_verifier},
                EngineConfig(workers=1, cache_size=0),
            )
            engine.start()
        try:
            started = _time.monotonic()
            first = engine.infer(
                TASK_VERIFY, "the first claim is slow .", serve_context
            )
            slow_elapsed = _time.monotonic() - started
            started = _time.monotonic()
            second = engine.infer(
                TASK_VERIFY, "the second claim is fast .", serve_context
            )
            fast_elapsed = _time.monotonic() - started
            assert first.ok and second.ok
            assert slow_elapsed >= 0.25  # budget of one: only the first
            assert fast_elapsed < 0.25
        finally:
            engine.stop(drain=True)

    def test_no_plan_means_no_injector(self, engine):
        # zero-overhead-when-disabled: the hot path carries a single
        # attribute that is None, not a disabled gate object.
        assert engine._chaos is None
