"""Unit tests for the messy-table corruption operators and profiles."""

import json

import pytest

from repro.errors import MessyTableError
from repro.messy import (
    OPERATORS,
    PROFILES,
    get_operator,
    perturb_context,
    perturb_samples,
    perturb_table,
    profile_operators,
)
from repro.tables.serialize import table_to_json
from repro.tables.table import Table

_CANONICAL_ORDER = (
    "abbrev_headers",
    "merge_columns",
    "currency_cells",
    "unit_suffix_cells",
    "percent_cells",
    "locale_numbers",
    "footnote_markers",
    "dash_nulls",
    "duplicate_column",
    "shuffle_columns",
    "transpose",
)


class TestRegistry:
    def test_canonical_order(self):
        assert tuple(OPERATORS) == _CANONICAL_ORDER

    def test_get_operator_unknown(self):
        with pytest.raises(MessyTableError):
            get_operator("melt_table")

    def test_heavy_profile_is_full_registry(self):
        assert PROFILES["heavy"] == tuple(OPERATORS)

    def test_profiles_reference_real_operators(self):
        for profile, names in PROFILES.items():
            for name in names:
                assert name in OPERATORS, f"{profile} references {name}"

    def test_unknown_profile(self):
        with pytest.raises(MessyTableError):
            profile_operators("apocalyptic")


class TestOperatorContracts:
    @pytest.mark.parametrize("name", _CANONICAL_ORDER)
    def test_deterministic(self, name, players_table):
        op = get_operator(name)
        first = table_to_json(op(players_table, "k:1"))
        second = table_to_json(op(players_table, "k:1"))
        assert first == second

    @pytest.mark.parametrize("name", _CANONICAL_ORDER)
    def test_returns_valid_table(self, name, players_table, finance_table):
        op = get_operator(name)
        for table in (players_table, finance_table):
            for key in ("a", "b", "c"):
                out = op(table, key)
                assert isinstance(out, Table)
                # row_name lookups must keep working after every operator
                if out.row_name_column is not None and out.n_rows:
                    assert out.row_name(0)

    def test_input_table_untouched(self, players_table):
        before = table_to_json(players_table)
        for name in _CANONICAL_ORDER:
            get_operator(name)(players_table, "x")
        assert table_to_json(players_table) == before

    def test_some_operator_changes_the_table(self, players_table):
        changed = [
            name
            for name in _CANONICAL_ORDER
            for key in ("s1", "s2", "s3")
            if table_to_json(get_operator(name)(players_table, key))
            != table_to_json(players_table)
        ]
        assert changed, "no operator fired on any of three keys"

    def test_duplicate_column_renames_copy(self, players_table):
        for key in ("d0", "d1", "d2", "d3", "d4", "d5"):
            out = get_operator("duplicate_column")(players_table, key)
            if out.n_columns > players_table.n_columns:
                extras = [
                    name for name in out.column_names
                    if name not in players_table.column_names
                ]
                assert extras and all("(" in name for name in extras)
                return
        pytest.fail("duplicate_column never fired across six keys")

    def test_transpose_preserves_cell_multiset(self, finance_table):
        for key in ("t0", "t1", "t2", "t3", "t4", "t5"):
            out = get_operator("transpose")(finance_table, key)
            if out.column_names != finance_table.column_names:
                before = sorted(
                    cell.raw
                    for row in finance_table.rows
                    for cell in row[1:]
                )
                after = sorted(
                    cell.raw for row in out.rows for cell in row[1:]
                )
                assert before == after
                return
        pytest.fail("transpose never fired across six keys")


class TestPerturbEntryPoints:
    def test_perturb_table_deterministic(self, players_table):
        a = table_to_json(perturb_table(players_table, "seed:0", "heavy"))
        b = table_to_json(perturb_table(players_table, "seed:0", "heavy"))
        assert a == b

    def test_different_keys_differ(self, players_table):
        outs = {
            json.dumps(
                table_to_json(
                    perturb_table(players_table, f"seed:{i}", "heavy")
                ),
                sort_keys=True,
            )
            for i in range(4)
        }
        assert len(outs) > 1, "four keys produced identical corruption"

    def test_perturb_context_stamps_meta(self, players_context):
        out = perturb_context(players_context, "ctx:0", "light")
        assert out.meta["perturb"] == "light"
        assert out.uid == players_context.uid
        assert out.paragraphs == players_context.paragraphs
        # original untouched
        assert "perturb" not in players_context.meta

    def test_perturb_samples_keeps_gold(self, players_context):
        from tests.conftest import qa_lookup_samples

        samples = qa_lookup_samples(players_context)[:4]
        messy = perturb_samples(samples, "bench:0", "light")
        assert len(messy) == len(samples)
        for clean, dirty in zip(samples, messy):
            assert dirty.answer == clean.answer
            assert dirty.sentence == clean.sentence
            assert dirty.context.meta["perturb"] == "light"

    def test_perturb_samples_deterministic(self, players_context):
        from tests.conftest import qa_lookup_samples

        samples = qa_lookup_samples(players_context)[:4]
        a = perturb_samples(samples, "bench:0", "heavy")
        b = perturb_samples(samples, "bench:0", "heavy")
        assert [table_to_json(s.context.table) for s in a] == [
            table_to_json(s.context.table) for s in b
        ]
