"""Unit tests for serialization and table-text contexts."""

import json

from repro.tables import TableContext, linearize_table, table_from_json, table_to_json
from repro.tables.context import Paragraph, split_sentences
from repro.tables.serialize import dumps, linearize_row, loads


class TestJsonRoundTrip:
    def test_round_trip_preserves_cells(self, players_table):
        back = table_from_json(table_to_json(players_table))
        assert back.column_names == players_table.column_names
        assert [
            [cell.raw for cell in row] for row in back.rows
        ] == [[cell.raw for cell in row] for row in players_table.rows]

    def test_round_trip_preserves_types(self, players_table):
        back = table_from_json(table_to_json(players_table))
        for column in players_table.schema:
            assert back.column_type(column.name) is column.type

    def test_round_trip_metadata(self, players_table):
        back = table_from_json(table_to_json(players_table))
        assert back.title == players_table.title
        assert back.row_name_column == players_table.row_name_column

    def test_string_round_trip(self, players_table):
        assert loads(dumps(players_table)).n_rows == players_table.n_rows

    def test_json_is_serializable(self, players_table):
        json.dumps(table_to_json(players_table))


class TestLinearize:
    def test_contains_header_and_rows(self, players_table):
        text = linearize_table(players_table)
        assert "header : player | team | points | rebounds" in text
        assert "row 1 : john smith | hawks | 31 | 7" in text

    def test_title_prefix(self, players_table):
        assert linearize_table(players_table).startswith(
            "title : player statistics"
        )

    def test_max_rows(self, players_table):
        text = linearize_table(players_table, max_rows=2)
        assert "row 2" in text
        assert "row 3" not in text

    def test_linearize_row_skips_nulls(self, players_table):
        table = players_table.append_row(["x y", "jazz", "n/a", "3"])
        text = linearize_row(table, 5)
        assert "points" not in text
        assert "rebounds is 3" in text


class TestSentenceSplit:
    def test_splits_on_periods(self):
        parts = split_sentences("First one. Second one. Third.")
        assert len(parts) == 3

    def test_empty(self):
        assert split_sentences("   ") == []

    def test_no_split_inside_numbers(self):
        parts = split_sentences("Revenue was 3.5 million. It grew.")
        assert len(parts) == 2


class TestTableContext:
    def test_text_concatenates_paragraphs(self, players_table):
        context = TableContext(
            table=players_table,
            paragraphs=(Paragraph("One."), Paragraph("Two.")),
        )
        assert context.text == "One. Two."

    def test_has_text(self, players_table):
        assert not TableContext(table=players_table).has_text
        assert TableContext(
            table=players_table, paragraphs=(Paragraph("hello"),)
        ).has_text

    def test_add_paragraph_is_immutable(self, players_table):
        base = TableContext(table=players_table)
        extended = base.add_paragraph("new text")
        assert not base.has_text
        assert extended.has_text
        assert extended.paragraphs[0].source == "generated"

    def test_json_round_trip(self, players_context):
        back = TableContext.from_json(players_context.to_json())
        assert back.uid == players_context.uid
        assert back.text == players_context.text
        assert back.meta == players_context.meta
        assert back.table.n_rows == players_context.table.n_rows

    def test_sentences(self, players_context):
        assert len(players_context.sentences) == 2
