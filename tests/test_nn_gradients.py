"""Numerical-gradient checks for the numpy MLP backpropagation."""

import numpy as np
import pytest

from repro.models.nn import MLP, MLPConfig


def _numerical_gradient(mlp, x, y, param, index, eps=1e-6):
    original = param[index]
    param[index] = original + eps
    loss_plus = mlp.loss(x, y)
    param[index] = original - eps
    loss_minus = mlp.loss(x, y)
    param[index] = original
    return (loss_plus - loss_minus) / (2 * eps)


def _analytic_gradients(mlp, x, y):
    """Backprop gradients of the mean CE loss (no weight decay)."""
    logits, activations = mlp.forward(x)
    shifted = logits - logits.max(axis=1, keepdims=True)
    proba = np.exp(shifted)
    proba /= proba.sum(axis=1, keepdims=True)
    n = len(x)
    grad = proba.copy()
    grad[np.arange(n), y] -= 1.0
    grad /= n
    grads_w = []
    grads_b = []
    for index in reversed(range(len(mlp.weights))):
        a_in = activations[index]
        grads_w.append(a_in.T @ grad)
        grads_b.append(grad.sum(axis=0))
        if index > 0:
            grad = grad @ mlp.weights[index].T
            grad *= (activations[index] > 0).astype(np.float64)
    return list(reversed(grads_w)), list(reversed(grads_b))


class TestBackprop:
    @pytest.fixture
    def setup(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(12, 4))
        y = rng.integers(0, 3, size=12)
        mlp = MLP(MLPConfig(input_dim=4, hidden_dims=(6,), n_classes=3,
                            weight_decay=0.0))
        return mlp, x, y

    def test_weight_gradients_match_numerical(self, setup):
        mlp, x, y = setup
        grads_w, _ = _analytic_gradients(mlp, x, y)
        for layer in range(len(mlp.weights)):
            for index in [(0, 0), (1, 2), (3, 1)]:
                if index[0] >= mlp.weights[layer].shape[0]:
                    continue
                if index[1] >= mlp.weights[layer].shape[1]:
                    continue
                numerical = _numerical_gradient(
                    mlp, x, y, mlp.weights[layer], index
                )
                analytic = grads_w[layer][index]
                assert numerical == pytest.approx(analytic, abs=1e-5), (
                    layer, index
                )

    def test_bias_gradients_match_numerical(self, setup):
        mlp, x, y = setup
        _, grads_b = _analytic_gradients(mlp, x, y)
        for layer in range(len(mlp.biases)):
            for index in range(min(3, len(mlp.biases[layer]))):
                numerical = _numerical_gradient(
                    mlp, x, y, mlp.biases[layer], (index,)
                )
                assert numerical == pytest.approx(
                    grads_b[layer][index], abs=1e-5
                )

    def test_loss_decreases_on_separable_data(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(100, 3))
        y = (x[:, 0] > 0).astype(np.int64)
        mlp = MLP(MLPConfig(input_dim=3, hidden_dims=(8,), epochs=80,
                            learning_rate=1e-2, patience=20))
        before = mlp.loss(x, y)
        mlp.fit(x, y)
        assert mlp.loss(x, y) < before * 0.5


class TestAdam:
    def test_step_moves_against_gradient(self):
        from repro.models.nn import AdamState

        param = np.array([1.0, -1.0])
        state = AdamState.like(param)
        gradient = np.array([0.5, -0.5])
        updated = state.step(param, gradient, lr=0.1)
        assert updated[0] < param[0]
        assert updated[1] > param[1]

    def test_bias_correction_first_step(self):
        from repro.models.nn import AdamState

        param = np.zeros(1)
        state = AdamState.like(param)
        updated = state.step(param, np.array([1.0]), lr=0.1)
        # first Adam step is ~lr regardless of gradient magnitude
        assert updated[0] == pytest.approx(-0.1, abs=1e-6)
