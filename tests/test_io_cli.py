"""Tests for JSONL persistence and the CLI."""

import json

import pytest

from repro.errors import DatasetError, FileFormatError
from repro.io import (
    load_contexts,
    load_samples,
    read_jsonl,
    save_contexts,
    save_samples,
    write_jsonl,
)
from repro.cli import main as cli_main, resolve_kinds
from repro.pipelines.samples import ReasoningSample, TaskType
from repro.telemetry import REPORT_KIND, validate_report


@pytest.fixture
def samples(players_context):
    return [
        ReasoningSample(
            uid=f"io-{i}",
            task=TaskType.QUESTION_ANSWERING,
            context=players_context,
            sentence=f"question {i} ?",
            answer=(str(i),),
        )
        for i in range(5)
    ]


class TestJsonl:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "data.jsonl"
        records = [{"a": 1}, {"b": [1, 2]}]
        assert write_jsonl(path, records) == 2
        assert list(read_jsonl(path)) == records

    def test_read_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            list(read_jsonl(tmp_path / "nope.jsonl"))

    def test_read_bad_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(DatasetError) as exc:
            list(read_jsonl(path))
        assert ":2:" in str(exc.value)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"a": 1}\n\n{"b": 2}\n')
        assert len(list(read_jsonl(path))) == 2

    def test_samples_round_trip(self, tmp_path, samples):
        path = tmp_path / "samples.jsonl"
        assert save_samples(path, samples) == 5
        loaded = load_samples(path)
        assert [s.uid for s in loaded] == [s.uid for s in samples]
        assert loaded[0].answer == samples[0].answer

    def test_contexts_round_trip(self, tmp_path, players_context):
        path = tmp_path / "contexts.jsonl"
        save_contexts(path, [players_context])
        (loaded,) = load_contexts(path)
        assert loaded.uid == players_context.uid
        assert loaded.table.n_rows == players_context.table.n_rows

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "x.jsonl"
        write_jsonl(path, [{"a": 1}])
        assert path.exists()

    def test_read_non_object_line_reports_line(self, tmp_path):
        path = tmp_path / "list.jsonl"
        path.write_text('{"ok": 1}\n[1, 2]\n')
        with pytest.raises(FileFormatError) as exc:
            list(read_jsonl(path))
        assert exc.value.line_number == 2
        assert ":2:" in str(exc.value)

    def test_format_errors_are_dataset_errors(self, tmp_path):
        # callers that catch DatasetError keep working
        assert issubclass(FileFormatError, DatasetError)
        with pytest.raises(FileFormatError):
            list(read_jsonl(tmp_path / "nope.jsonl"))


class TestAtomicWrites:
    def test_failed_write_leaves_original_intact(self, tmp_path):
        path = tmp_path / "data.jsonl"
        write_jsonl(path, [{"keep": 1}])
        before = path.read_text(encoding="utf-8")

        def poisoned():
            yield {"partial": 1}
            raise RuntimeError("source died mid-iteration")

        with pytest.raises(RuntimeError):
            write_jsonl(path, poisoned())
        assert path.read_text(encoding="utf-8") == before

    def test_failed_write_leaves_no_temp_file(self, tmp_path):
        path = tmp_path / "data.jsonl"

        def poisoned():
            yield {"partial": 1}
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            write_jsonl(path, poisoned())
        assert list(tmp_path.iterdir()) == []

    def test_successful_write_leaves_no_temp_file(self, tmp_path):
        path = tmp_path / "data.jsonl"
        write_jsonl(path, [{"a": 1}])
        assert [p.name for p in tmp_path.iterdir()] == ["data.jsonl"]

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        path = tmp_path / "data.jsonl"
        write_jsonl(path, [{"old": 1}])
        write_jsonl(path, [{"new": 1}, {"new": 2}])
        assert list(read_jsonl(path)) == [{"new": 1}, {"new": 2}]


class TestCli:
    def test_version_flag(self, capsys):
        from repro.cli import _package_version

        with pytest.raises(SystemExit) as caught:
            cli_main(["--version"])
        assert caught.value.code == 0
        out = capsys.readouterr().out
        assert out.strip() == f"repro {_package_version()}"
        # the fallback path must report the source tree's version
        import repro

        assert _package_version() == repro.__version__

    def test_stats(self, capsys):
        assert cli_main(["stats", "semtabfacts"]) == 0
        out = capsys.readouterr().out
        assert "semtabfacts" in out
        assert "Tables" in out

    def test_generate_pipeline(self, tmp_path, players_context, capsys):
        contexts_path = tmp_path / "ctx.jsonl"
        save_contexts(contexts_path, [players_context])
        out_path = tmp_path / "synth.jsonl"
        code = cli_main([
            "generate", str(contexts_path),
            "--out", str(out_path),
            "--kinds", "sql,logic",
            "--per-context", "6",
        ])
        assert code == 0
        produced = load_samples(out_path)
        assert produced
        tasks = {s.task for s in produced}
        assert TaskType.QUESTION_ANSWERING in tasks

    def test_make_dataset(self, tmp_path, capsys, monkeypatch):
        # shrink the benchmark for test speed
        import repro.cli as cli_module
        from repro.datasets import make_semtabfacts
        from repro.datasets.semtabfacts import SemTabFactsConfig

        monkeypatch.setitem(
            cli_module._BENCHMARKS,
            "semtabfacts",
            lambda: make_semtabfacts(
                SemTabFactsConfig(train_contexts=4, dev_contexts=2,
                                  test_contexts=2)
            ),
        )
        code = cli_main(["make-dataset", "semtabfacts",
                         "--out", str(tmp_path / "stf")])
        assert code == 0
        assert (tmp_path / "stf" / "train.contexts.jsonl").exists()
        assert (tmp_path / "stf" / "dev.gold.jsonl").exists()

    def test_make_dataset_stamps_benchmark(self, tmp_path, monkeypatch):
        import repro.cli as cli_module
        from repro.datasets import make_semtabfacts
        from repro.datasets.semtabfacts import SemTabFactsConfig

        monkeypatch.setitem(
            cli_module._BENCHMARKS,
            "semtabfacts",
            lambda: make_semtabfacts(
                SemTabFactsConfig(train_contexts=4, dev_contexts=2,
                                  test_contexts=2)
            ),
        )
        cli_main(["make-dataset", "semtabfacts",
                  "--out", str(tmp_path / "stf")])
        contexts = load_contexts(tmp_path / "stf" / "train.contexts.jsonl")
        assert all(
            ctx.meta.get("benchmark") == "semtabfacts" for ctx in contexts
        )


class TestCliModels:
    def test_save_model_then_list(self, tmp_path, capsys, serve_context):
        from .conftest import verification_samples

        corpus = tmp_path / "claims.jsonl"
        save_samples(corpus, verification_samples(serve_context))
        registry = tmp_path / "registry"
        code = cli_main([
            "save-model", str(corpus),
            "--registry", str(registry),
            "--name", "verifier",
            "--task", "verify",
            "--epochs", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "saved verifier@v0001" in out
        assert "train_accuracy" in out

        assert cli_main(["models", "list", "--registry", str(registry)]) == 0
        listing = capsys.readouterr().out
        assert "verifier" in listing and "v0001" in listing
        assert listing.lstrip().startswith("*")  # default marker

    def test_save_model_wrong_task_fails(self, tmp_path, capsys, serve_context):
        from .conftest import verification_samples

        corpus = tmp_path / "claims.jsonl"
        save_samples(corpus, verification_samples(serve_context))
        code = cli_main([
            "save-model", str(corpus),
            "--registry", str(tmp_path / "registry"),
            "--name", "qa", "--task", "qa",
        ])
        assert code == 1
        assert "no qa samples" in capsys.readouterr().err

    def test_serve_empty_registry_fails(self, tmp_path, capsys):
        code = cli_main([
            "serve", "--registry", str(tmp_path / "nothing"), "--port", "0",
        ])
        assert code == 1
        assert "no models registered" in capsys.readouterr().err


class TestDefaultKinds:
    """The per-benchmark program-kind defaults the paper prescribes."""

    def test_explicit_kinds_win(self):
        assert resolve_kinds("sql,arith", "feverous", []) == ("sql", "arith")

    def test_benchmark_flag_selects_paper_kinds(self):
        assert resolve_kinds(None, "wikisql", []) == ("sql",)
        assert resolve_kinds(None, "tatqa", []) == ("sql", "arith")
        assert resolve_kinds(None, "feverous", []) == ("logic",)
        assert resolve_kinds(None, "semtabfacts", []) == ("logic",)

    def test_detects_benchmark_from_context_meta(self, players_context):
        stamped = [
            players_context.with_paragraphs([]),
        ]
        stamped[0].meta["benchmark"] = "tatqa"
        assert resolve_kinds(None, None, stamped) == ("sql", "arith")

    def test_mixed_or_missing_meta_falls_back_to_logic(self, players_context):
        assert resolve_kinds(None, None, [players_context]) == ("logic",)


class TestCliReport:
    def test_generate_report_round_trip(self, tmp_path, players_context):
        contexts_path = tmp_path / "ctx.jsonl"
        save_contexts(contexts_path, [players_context])
        out_path = tmp_path / "synth.jsonl"
        report_path = tmp_path / "report.json"
        code = cli_main([
            "generate", str(contexts_path),
            "--out", str(out_path),
            "--kinds", "sql",
            "--per-context", "5",
            "--report", str(report_path),
        ])
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["kind"] == REPORT_KIND
        assert validate_report(report) == []
        written = len(load_samples(out_path))
        assert report["samples_written"] == written
        emitted = sum(
            stats["emitted"] for stats in report["pipelines"].values()
        )
        assert emitted == written

    def test_generate_workers_matches_serial(self, tmp_path, players_context,
                                             finance_context):
        contexts_path = tmp_path / "ctx.jsonl"
        save_contexts(contexts_path, [players_context, finance_context])

        def run(workers, out_name):
            out_path = tmp_path / out_name
            code = cli_main([
                "generate", str(contexts_path),
                "--out", str(out_path),
                "--kinds", "sql",
                "--per-context", "4",
                "--seed", "9",
                "--workers", str(workers),
            ])
            assert code == 0
            return out_path.read_text()

        assert run(1, "serial.jsonl") == run(2, "parallel.jsonl")


class TestCliCheckpoint:
    def test_resume_requires_checkpoint_dir(self, tmp_path, capsys):
        assert cli_main([
            "generate", str(tmp_path / "ctx.jsonl"),
            "--out", str(tmp_path / "o.jsonl"),
            "--resume",
        ]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_checkpoint_then_resume_matches_plain_run(
        self, tmp_path, players_context, finance_context
    ):
        contexts_path = tmp_path / "ctx.jsonl"
        save_contexts(contexts_path, [players_context, finance_context])
        common = [
            "generate", str(contexts_path),
            "--kinds", "sql", "--per-context", "4", "--seed", "9",
        ]
        plain = tmp_path / "plain.jsonl"
        assert cli_main(common + ["--out", str(plain)]) == 0
        ckpt = tmp_path / "ckpt"
        first = tmp_path / "first.jsonl"
        assert cli_main(
            common + ["--out", str(first), "--checkpoint-dir", str(ckpt),
                      "--checkpoint-every", "1"]
        ) == 0
        resumed = tmp_path / "resumed.jsonl"
        assert cli_main(
            common + ["--out", str(resumed), "--checkpoint-dir", str(ckpt),
                      "--resume"]
        ) == 0
        assert first.read_text() == plain.read_text()
        assert resumed.read_text() == plain.read_text()
