"""Tests for the table corpus store: persistence, integrity, determinism.

The contracts under test, in ISSUE order: tamper/truncate a shard or
drop a manifest and every read path refuses with a typed
``IntegrityError``; an index rebuilt from the shards is byte-identical
to one built incrementally; query results are identical at any worker
count; and an index build killed with ``kill -9`` mid-flight resumes
from its part checkpoints to a byte-identical result.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import IntegrityError, StoreError
from repro.store import (
    Retriever,
    TableStore,
    build_index,
    doc_id_for,
    load_index,
    ordinal_for,
    synth_corpus,
    synth_table_context,
)
from repro.store.index import index_path_for, part_path_for

pytestmark = pytest.mark.timeout(300)


def _contexts(n, seed=0):
    return list(synth_corpus(n, seed=seed))


class TestStoreRoundTrip:
    def test_add_get_iter_verify(self, tmp_path):
        store = TableStore.create(tmp_path / "s", shard_size=10)
        contexts = _contexts(25)
        doc_ids = store.add(contexts)
        assert doc_ids == [doc_id_for(i) for i in range(25)]
        assert len(store) == 25
        # spans three shards at shard_size=10
        assert len(store.shards()) == 3
        for i in (0, 9, 10, 24):
            assert store.get(doc_id_for(i)).uid == contexts[i].uid
        assert [
            (doc_id, context.uid)
            for doc_id, context in store.iter_docs()
        ] == [(doc_id_for(i), c.uid) for i, c in enumerate(contexts)]
        report = store.verify()
        assert report["ok"] and report["docs"] == 25

    def test_reopen_appends_continue_tail_shard(self, tmp_path):
        root = tmp_path / "s"
        TableStore.create(root, shard_size=10).add(_contexts(7))
        store = TableStore.open(root)
        store.add(_contexts(7, seed=1))
        assert len(store) == 14
        # 14 docs still fit in two shards: the tail shard was continued,
        # not abandoned.
        assert len(store.shards()) == 2
        store.verify()

    def test_doc_id_codec(self):
        assert ordinal_for(doc_id_for(123)) == 123
        for bad in ("x123", "t-1", "t", "123", "t00bad000"):
            with pytest.raises(StoreError):
                ordinal_for(bad)

    def test_unknown_doc_is_store_error(self, tmp_path):
        store = TableStore.create(tmp_path / "s")
        store.add(_contexts(3))
        with pytest.raises(StoreError):
            store.get(doc_id_for(3))

    def test_create_refuses_existing_store(self, tmp_path):
        TableStore.create(tmp_path / "s")
        with pytest.raises(StoreError):
            TableStore.create(tmp_path / "s")

    def test_open_not_a_store_is_store_error(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(StoreError):
            TableStore.open(tmp_path / "empty")


class TestStoreIntegrity:
    """Physical damage is a typed refusal, never a wrong answer."""

    def _store(self, tmp_path, n=12, shard_size=5):
        root = tmp_path / "s"
        store = TableStore.create(root, shard_size=shard_size)
        store.add(_contexts(n))
        return root

    def test_flipped_byte_in_shard_refused(self, tmp_path):
        root = self._store(tmp_path)
        shard = sorted((root / "shards").glob("*.jsonl"))[0]
        blob = bytearray(shard.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        shard.write_bytes(bytes(blob))
        with pytest.raises(IntegrityError):
            TableStore.open(root).get(doc_id_for(0))

    def test_truncated_shard_refused(self, tmp_path):
        root = self._store(tmp_path)
        shard = sorted((root / "shards").glob("*.jsonl"))[-1]
        shard.write_bytes(shard.read_bytes()[:-20])
        store = TableStore.open(root)
        with pytest.raises(IntegrityError):
            store.verify()

    def test_dropped_sidecar_refused(self, tmp_path):
        root = self._store(tmp_path)
        sidecar = sorted((root / "shards").glob("*.manifest.json"))[0]
        sidecar.unlink()
        with pytest.raises(IntegrityError):
            TableStore.open(root).verify()

    def test_tampered_store_manifest_refused(self, tmp_path):
        root = self._store(tmp_path)
        manifest_path = root / "manifest.json"
        payload = json.loads(manifest_path.read_text())
        payload["shards"][0]["records"] += 1
        manifest_path.write_text(json.dumps(payload))
        with pytest.raises(IntegrityError):
            TableStore.open(root)

    def test_torn_tail_write_is_recovered_on_next_add(self, tmp_path):
        # a crash mid-append leaves bytes past the manifested length;
        # the next writer truncates them (redo-log discipline) and the
        # store stays verifiable.
        root = self._store(tmp_path, n=7, shard_size=10)
        shard = sorted((root / "shards").glob("*.jsonl"))[-1]
        with shard.open("ab") as handle:
            handle.write(b'{"torn": tr')
        store = TableStore.open(root)
        # reads of the damaged tail refuse until a writer recovers it
        with pytest.raises(IntegrityError):
            store.verify()
        store.add(_contexts(2, seed=9))
        fresh = TableStore.open(root)
        assert fresh.verify()["docs"] == 9


class TestIndexDeterminism:
    def _built(self, tmp_path, name, contexts, *, workers=1, chunks=1):
        root = tmp_path / name
        store = TableStore.create(root, shard_size=8)
        if chunks == 1:
            store.add(contexts)
        else:
            step = max(1, len(contexts) // chunks)
            for at in range(0, len(contexts), step):
                store.add(contexts[at:at + step])
        build_index(root, workers=workers)
        return root

    def test_incremental_adds_equal_scratch_build_bytes(self, tmp_path):
        contexts = _contexts(30)
        scratch = self._built(tmp_path, "scratch", contexts)
        increm = self._built(tmp_path, "increm", contexts, chunks=4)
        assert (
            index_path_for(scratch).read_bytes()
            == index_path_for(increm).read_bytes()
        )

    def test_rebuild_after_adds_reuses_clean_parts(self, tmp_path):
        root = tmp_path / "s"
        store = TableStore.create(root, shard_size=8)
        store.add(_contexts(16))
        build_index(root)
        store.add(_contexts(16, seed=1))
        summary = build_index(root)
        # the first two shards' part files are pure functions of shard
        # bytes that did not change: reused, not rebuilt.
        assert summary["parts_reused"] >= 2
        other = self._built(
            tmp_path, "other", _contexts(16) + _contexts(16, seed=1)
        )
        assert (
            index_path_for(root).read_bytes()
            == index_path_for(other).read_bytes()
        )

    @pytest.mark.parametrize("workers", [2, 4])
    def test_worker_count_is_invisible(self, tmp_path, workers):
        contexts = _contexts(40)
        serial = self._built(tmp_path, "serial", contexts, workers=1)
        parallel = self._built(
            tmp_path, f"w{workers}", contexts, workers=workers
        )
        assert (
            index_path_for(serial).read_bytes()
            == index_path_for(parallel).read_bytes()
        )
        # and therefore queries agree exactly, scores included
        a = Retriever.open(serial)
        b = Retriever.open(parallel)
        for i in range(10):
            question = (
                f"what is the revenue for "
                f"{synth_table_context(0, i).table.row_name(0)} ?"
            )
            assert [h.to_json() for h in a.search(question)] == [
                h.to_json() for h in b.search(question)
            ]

    def test_missing_index_is_store_error(self, tmp_path):
        root = tmp_path / "s"
        TableStore.create(root).add(_contexts(3))
        with pytest.raises(StoreError, match="repro store build"):
            load_index(root)

    def test_stale_index_is_store_error(self, tmp_path):
        root = tmp_path / "s"
        store = TableStore.create(root)
        store.add(_contexts(3))
        build_index(root)
        store.add(_contexts(3, seed=1))
        with pytest.raises(StoreError, match="stale"):
            load_index(root)

    def test_tampered_index_is_integrity_error(self, tmp_path):
        root = tmp_path / "s"
        TableStore.create(root).add(_contexts(3))
        build_index(root)
        path = index_path_for(root)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        path.write_bytes(bytes(blob))
        with pytest.raises(IntegrityError):
            load_index(root)


_KILL_SCRIPT = """
import sys
from repro.store import build_index
build_index(sys.argv[1], workers=2)
"""


class TestCrashResume:
    def test_kill9_mid_build_resumes_byte_identical(self, tmp_path):
        contexts = _contexts(48)
        root = tmp_path / "victim"
        store = TableStore.create(root, shard_size=8)
        store.add(contexts)

        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parent.parent / "src"
        )
        env["REPRO_STORE_PART_DELAY_S"] = "0.25"
        proc = subprocess.Popen(
            [sys.executable, "-c", _KILL_SCRIPT, str(root)], env=env
        )
        # let it finish some (but, at 6 parts x 0.25s on 2 workers, not
        # all) of the per-shard checkpoints, then kill it un-gracefully
        time.sleep(0.7)
        proc.send_signal(signal.SIGKILL)
        proc.wait()

        assert not index_path_for(root).exists()
        survivors = [
            shard.name
            for shard in TableStore.open(root).shards()
            if part_path_for(root, shard.name).exists()
        ]

        summary = build_index(root, workers=1)  # resume, different count
        if survivors:
            # the checkpoints that survived the kill were reused as-is
            assert summary["parts_reused"] >= len(survivors)

        pristine = tmp_path / "pristine"
        TableStore.create(pristine, shard_size=8).add(contexts)
        build_index(pristine, workers=4)
        assert (
            index_path_for(root).read_bytes()
            == index_path_for(pristine).read_bytes()
        )
