"""Tests for the SQL auto generator."""

import random

import pytest

from repro.programs.sql.generator import AutoSqlGenerator, SqlAutoGenConfig
from repro.programs.sql.parser import parse_sql
from repro.templates.extract import abstract_program


@pytest.fixture
def generator(rng):
    return AutoSqlGenerator(rng=rng)


class TestSqlAutoGen:
    def test_queries_execute_non_empty(self, generator, players_table):
        programs = generator.generate_many(players_table, 20)
        assert len(programs) >= 15
        for program in programs:
            result = program.execute(players_table)
            assert not result.is_empty

    def test_sources_reparse(self, generator, players_table):
        for program in generator.generate_many(players_table, 10):
            reparsed = parse_sql(program.source)
            assert (
                reparsed.execute(players_table).denotation()
                == program.execute(players_table).denotation()
            )

    def test_head_variety(self, players_table):
        generator = AutoSqlGenerator(rng=random.Random(7))
        sources = [
            program.source
            for program in generator.generate_many(players_table, 50)
        ]
        text = " ".join(sources)
        assert "count" in text
        assert any(agg in text for agg in ("sum", "avg", "min", "max"))
        assert "order by" in text

    def test_no_arithmetic_when_disabled(self, players_table):
        generator = AutoSqlGenerator(
            rng=random.Random(1),
            config=SqlAutoGenConfig(allow_arithmetic_head=False),
        )
        for program in generator.generate_many(players_table, 30):
            from repro.programs.sql.ast import ArithmeticItem

            assert not any(
                isinstance(item, ArithmeticItem)
                for item in program.query.items
            )

    def test_abstractable_into_templates(self, generator, players_table):
        abstracted = 0
        for program in generator.generate_many(players_table, 15):
            template = abstract_program(program, players_table)
            assert template.kind.value == "sql"
            abstracted += 1
        assert abstracted >= 10

    def test_text_only_table(self, rng):
        from repro.tables import Table

        table = Table.from_rows(
            ["name", "kind"], [["a", "x"], ["b", "y"], ["c", "x"]]
        )
        generator = AutoSqlGenerator(rng=rng)
        programs = generator.generate_many(table, 10)
        assert programs  # projection/count heads need no numeric column
