"""Tests for the MQA-QG baseline and the training harness."""

import pytest

from repro.mqaqg import MQAQG, MQAQGConfig
from repro.pipelines.samples import EvidenceType, TaskType
from repro.sampling.labeler import ClaimLabel
from repro.train import TrainingPlan, few_shot_subset
from repro.train.fewshot import label_budget_curve


class TestMQAQG:
    def test_generates_simple_questions(self, players_context):
        generator = MQAQG(MQAQGConfig(samples_per_context=8))
        samples = generator.generate([players_context])
        assert samples
        for sample in samples:
            assert sample.task is TaskType.QUESTION_ANSWERING
            assert len(sample.answer) == 1
            assert len(sample.evidence_cells) == 1  # single-cell lookups only
            assert sample.provenance["category"] == "lookup"

    def test_answers_are_faithful(self, players_context):
        generator = MQAQG(MQAQGConfig(samples_per_context=8))
        for sample in generator.generate([players_context]):
            ((row, column),) = sample.evidence_cells
            assert sample.answer[0] == players_context.table.cell(row, column).raw

    def test_claims_are_certified(self, players_context):
        generator = MQAQG(
            MQAQGConfig(task=TaskType.FACT_VERIFICATION, samples_per_context=12)
        )
        for sample in generator.generate([players_context]):
            ((row, column),) = sample.evidence_cells
            cell = players_context.table.cell(row, column)
            claimed_value = sample.sentence.rsplit(" is ", 1)[-1] \
                if " is " in sample.sentence else None
            if sample.label is ClaimLabel.SUPPORTED:
                assert cell.raw in sample.sentence
            else:
                assert sample.label is ClaimLabel.REFUTED

    def test_bridge_rows_use_text(self, players_context):
        generator = MQAQG(MQAQGConfig(samples_per_context=20, seed=2))
        samples = generator.generate([players_context])
        assert any(
            sample.evidence_type is EvidenceType.TABLE_TEXT
            for sample in samples
        )

    def test_no_complex_reasoning(self, players_context):
        """The baseline's defining limitation: no multi-row programs."""
        generator = MQAQG(MQAQGConfig(samples_per_context=10))
        for sample in generator.generate([players_context]):
            rows = {row for row, _ in sample.evidence_cells}
            assert len(rows) == 1


class TestTrainingPlans:
    def test_plan_constructors(self):
        plan = TrainingPlan.few_shot([], [])
        assert plan.name == "few_shot"
        assert TrainingPlan.supervised([]).name == "supervised"
        assert TrainingPlan.unsupervised([]).name == "unsupervised"
        assert TrainingPlan.augmentation([], []).name == "augmentation"

    def test_few_shot_subset_size(self, players_context):
        from repro.pipelines.samples import ReasoningSample

        gold = [
            ReasoningSample(
                uid=str(i),
                task=TaskType.QUESTION_ANSWERING,
                context=players_context,
                sentence=f"q{i}",
                answer=("a",),
            )
            for i in range(100)
        ]
        assert len(few_shot_subset(gold, k=50)) == 50
        assert len(few_shot_subset(gold, k=500)) == 100

    def test_few_shot_deterministic(self, players_context):
        from repro.pipelines.samples import ReasoningSample

        gold = [
            ReasoningSample(
                uid=str(i),
                task=TaskType.QUESTION_ANSWERING,
                context=players_context,
                sentence=f"q{i}",
                answer=("a",),
            )
            for i in range(40)
        ]
        a = [s.uid for s in few_shot_subset(gold, k=10, seed=3)]
        b = [s.uid for s in few_shot_subset(gold, k=10, seed=3)]
        assert a == b

    def test_budget_curve_nested(self, players_context):
        from repro.pipelines.samples import ReasoningSample

        gold = [
            ReasoningSample(
                uid=str(i),
                task=TaskType.QUESTION_ANSWERING,
                context=players_context,
                sentence=f"q{i}",
                answer=("a",),
            )
            for i in range(60)
        ]
        curve = label_budget_curve(gold, [10, 30, 60])
        uids_10 = [s.uid for s in curve[10]]
        uids_30 = [s.uid for s in curve[30]]
        assert uids_30[:10] == uids_10  # nested subsets
        assert len(curve[60]) == 60
