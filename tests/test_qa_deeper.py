"""Deeper coverage of the QA model: candidates, source head, staging."""

import numpy as np
import pytest

from repro.models.qa import (
    CANDIDATE_TYPES,
    CandidateGenerator,
    QAConfig,
    TagOpQA,
    _SourceHead,
)
from repro.pipelines.samples import ReasoningSample, TaskType
from repro.tables.values import format_number


def _question(context, sentence, answer):
    return ReasoningSample(
        uid=f"qd-{abs(hash(sentence)) % 10**6}",
        task=TaskType.QUESTION_ANSWERING,
        context=context,
        sentence=sentence,
        answer=tuple(answer),
    )


class TestCandidateCoverage:
    def test_multi_cell_candidates(self, players_context):
        generator = CandidateGenerator()
        candidates = generator.generate(
            "which players are on the hawks ?", players_context
        )
        multi = [c for c in candidates if c.type == "multi_cells"]
        answers = {c.answer for c in multi}
        assert ("john smith", "alan reed") in answers

    def test_count_cmp_orientations(self, players_context):
        generator = CandidateGenerator()
        candidates = generator.generate(
            "how many players scored more than 20 points ?", players_context
        )
        cmp_candidates = [c for c in candidates if c.type == "count_cmp"]
        answers = {c.answer[0] for c in cmp_candidates}
        assert "3" in answers  # above 20: 31, 22, 28

    def test_pct_pair_value(self, finance_context):
        generator = CandidateGenerator()
        candidates = generator.generate(
            "what was the percentage change in revenue from 2018 to 2019 ?",
            finance_context,
        )
        pct = {c.answer[0] for c in candidates if c.type == "pct_pair"}
        assert format_number(200 / 1000) in pct

    def test_share_candidate(self, finance_context):
        generator = CandidateGenerator()
        candidates = generator.generate(
            "what share of the total 2019 does revenue account for ?",
            finance_context,
        )
        shares = {c.answer[0] for c in candidates if c.type == "share"}
        assert format_number(1200 / 2850) in shares

    def test_greater_pair_boolean(self, finance_context):
        generator = CandidateGenerator()
        candidates = generator.generate(
            "does revenue beat cash on 2019 ?", finance_context
        )
        booleans = {c.answer[0] for c in candidates if c.type == "greater_pair"}
        assert "true" in booleans

    def test_mixed_source_pairs(self, finance_context):
        """Pairs across a table cell and a text-record cell."""
        generator = CandidateGenerator()
        candidates = generator.generate(
            "what is the difference between revenue and deferred revenue "
            "in 2019 ?",
            finance_context,
        )
        mixed = [c for c in candidates if c.source == "mixed"]
        assert mixed
        diffs = {c.answer[0] for c in mixed if c.type == "diff_pair"}
        assert format_number(1200 - 420) in diffs

    def test_candidate_cap(self, players_context):
        generator = CandidateGenerator(max_candidates=10)
        candidates = generator.generate("what ?", players_context)
        assert len(candidates) <= 10

    def test_all_types_are_known(self, players_context, finance_context):
        generator = CandidateGenerator()
        for context, question in (
            (players_context, "how many different teams have more than 20 "
                              "points for john smith and raj patel ?"),
            (finance_context, "what was the percentage change of revenue "
                              "from 2018 to 2019 ?"),
        ):
            for candidate in generator.generate(question, context):
                assert candidate.type in CANDIDATE_TYPES


class TestSourceHead:
    def test_untrained_head(self):
        head = _SourceHead()
        assert head.total == 0

    def test_posterior_prefers_observed_source(self):
        head = _SourceHead()
        for _ in range(10):
            head.observe("what does the passage say about x ?", "text")
            head.observe("what is the highest score in the table ?", "table")
        posterior = head.log_posterior("according to the passage , what ?")
        assert posterior["text"] > posterior["table"]
        posterior = head.log_posterior("what is the highest score ?")
        assert posterior["table"] > posterior["text"]

    def test_unseen_source_penalized_but_floored(self):
        head = _SourceHead()
        head.observe("anything ?", "table")
        posterior = head.log_posterior("anything ?")
        # heavily penalized relative to the observed source...
        assert posterior["mixed"] < posterior["table"] - 2.0
        # ...but never below the floor (no infinite vetoes)
        assert posterior["mixed"] >= np.log(0.02) - 1e-9

    def test_merge_pools_counts(self):
        a, b = _SourceHead(), _SourceHead()
        a.observe("alpha ?", "table")
        b.observe("beta ?", "text")
        merged = a.merged_with(b)
        assert merged.total == 2
        assert merged._source_counts["table"] == 1
        assert merged._source_counts["text"] == 1


class TestFineTuneStability:
    def test_small_fine_tune_preserves_model(self, players_context):
        """A handful of shots must not destroy a trained model."""
        table = players_context.table
        samples = []
        for row in range(table.n_rows):
            name = table.row_name(row)
            for column in ("points", "rebounds"):
                samples.append(_question(
                    players_context,
                    f"what is the {column} of {name} ?",
                    (table.cell(row, column).raw,),
                ))
        model = TagOpQA(QAConfig(epochs=15))
        model.fit(samples)
        before = sum(
            model.predict(s) == s.answer for s in samples
        )
        model.fine_tune(samples[:3])
        after = sum(
            model.predict(s) == s.answer for s in samples
        )
        assert after >= before - 2

    def test_fine_tune_empty_is_noop(self, players_context):
        model = TagOpQA(QAConfig(epochs=3))
        samples = [_question(players_context, "what is the points of bo chen ?",
                             ("28",))]
        model.fit(samples)
        model.fine_tune([])  # must not raise
