"""Tests for the synthetic benchmark builders."""

import pytest

from repro.datasets import (
    FeverousConfig,
    SemTabFactsConfig,
    TatQAConfig,
    WikiSQLConfig,
    benchmark_statistics,
    make_feverous,
    make_semtabfacts,
    make_tatqa,
    make_wikisql,
)
from repro.datasets.synth import (
    make_finance_context,
    make_science_context,
    make_wiki_context,
)
from repro.pipelines.samples import EvidenceType, TaskType
from repro.rng import make_rng
from repro.sampling.labeler import ClaimLabel

_SMALL_FEV = FeverousConfig(train_contexts=12, dev_contexts=6, test_contexts=6)
_SMALL_TAT = TatQAConfig(train_contexts=12, dev_contexts=6, test_contexts=6)
_SMALL_WSQL = WikiSQLConfig(train_contexts=12, dev_contexts=6, test_contexts=6)
_SMALL_STF = SemTabFactsConfig(train_contexts=12, dev_contexts=6, test_contexts=6)


class TestContextGenerators:
    def test_wiki_topics(self):
        rng = make_rng(1)
        for topic in ("sports", "politics", "music", "film", "geography"):
            context = make_wiki_context(rng, topic=topic)
            assert context.meta["topic"] == topic
            assert context.table.n_rows >= 4
            assert context.table.row_name_column is not None

    def test_wiki_text_records_are_absent_from_table(self):
        rng = make_rng(2)
        context = make_wiki_context(rng, topic="sports")
        for record in context.meta["text_records"]:
            name = record["player"]
            assert context.table.find_row_by_name(name) is None
            assert name in context.text

    def test_finance_context_shape(self):
        rng = make_rng(3)
        context = make_finance_context(rng)
        assert context.table.row_name_column == "item"
        years = context.meta["years"]
        assert all(year in context.table.schema for year in years)
        assert context.has_text

    def test_science_context_shape(self):
        rng = make_rng(4)
        context = make_science_context(rng)
        assert context.table.row_name_column == "sample"
        assert context.meta["domain"] == "science"

    def test_determinism(self):
        a = make_wiki_context(make_rng(9), topic="film", uid="u")
        b = make_wiki_context(make_rng(9), topic="film", uid="u")
        assert a.to_json() == b.to_json()


class TestBenchmarks:
    def test_feverous(self):
        bench = make_feverous(_SMALL_FEV)
        assert bench.task is TaskType.FACT_VERIFICATION
        assert set(bench.splits) == {"train", "dev", "test"}
        labels = {s.label for s in bench.train.gold}
        assert ClaimLabel.SUPPORTED in labels
        assert ClaimLabel.REFUTED in labels
        evidence = {s.evidence_type for s in bench.train.gold}
        assert EvidenceType.TEXT in evidence
        assert EvidenceType.TABLE in evidence

    def test_tatqa(self):
        bench = make_tatqa(_SMALL_TAT)
        assert bench.task is TaskType.QUESTION_ANSWERING
        assert bench.domain == "finance"
        for sample in bench.train.gold:
            assert sample.answer

    def test_wikisql_is_table_only(self):
        bench = make_wikisql(_SMALL_WSQL)
        for split in bench.splits.values():
            for sample in split.gold:
                assert sample.evidence_type is EvidenceType.TABLE
            for context in split.contexts:
                assert not context.has_text
                assert context.meta["topic"]

    def test_semtabfacts_three_way(self):
        bench = make_semtabfacts(
            SemTabFactsConfig(
                train_contexts=25, dev_contexts=10, test_contexts=10,
                unknown_fraction=0.3,
            )
        )
        labels = {s.label for s in bench.train.gold}
        assert ClaimLabel.UNKNOWN in labels

    def test_gold_claims_are_certified(self):
        """Gold table claims must verify against their own table."""
        from repro.programs.base import parse_program

        bench = make_feverous(_SMALL_FEV)
        checked = 0
        for sample in bench.train.gold:
            program = sample.provenance.get("program")
            if program is None:
                continue
        # gold provenance doesn't carry programs; check label balance instead
        supported = sum(
            1 for s in bench.train.gold if s.label is ClaimLabel.SUPPORTED
        )
        refuted = sum(
            1 for s in bench.train.gold if s.label is ClaimLabel.REFUTED
        )
        assert supported > 0 and refuted > 0

    def test_split_isolation(self):
        bench = make_tatqa(_SMALL_TAT)
        train_uids = {c.uid for c in bench.train.contexts}
        dev_uids = {c.uid for c in bench.dev.contexts}
        assert not (train_uids & dev_uids)

    def test_determinism(self):
        a = make_wikisql(_SMALL_WSQL)
        b = make_wikisql(_SMALL_WSQL)
        assert [s.sentence for s in a.train.gold] == [
            s.sentence for s in b.train.gold
        ]
        assert [list(s.answer) for s in a.dev.gold] == [
            list(s.answer) for s in b.dev.gold
        ]

    def test_unknown_split_raises(self):
        from repro.errors import DatasetError

        bench = make_wikisql(_SMALL_WSQL)
        with pytest.raises((DatasetError, ValueError)):
            bench.split("validation")


class TestStatistics:
    def test_table2_shape(self):
        bench = make_tatqa(_SMALL_TAT)
        stats = benchmark_statistics(bench)
        assert stats.total_samples == bench.total_samples
        assert stats.n_tables == bench.n_tables
        assert sum(stats.evidence_counts.values()) == stats.total_samples
        assert stats.question_type_counts  # QA benchmark has question types
        assert not stats.label_counts

    def test_verification_statistics(self):
        bench = make_feverous(_SMALL_FEV)
        stats = benchmark_statistics(bench)
        assert sum(stats.label_counts.values()) == stats.total_samples
