"""Unit tests for typed cell values and parsing."""

import math
import pickle

import pytest

from repro.errors import ValueParseError
from repro.tables.values import (
    Value,
    ValueType,
    coerce_number,
    days_in_month,
    format_number,
    infer_type,
    parse_value,
)


class TestCoerceNumber:
    def test_plain_integer(self):
        assert coerce_number("42") == 42.0

    def test_negative(self):
        assert coerce_number("-17") == -17.0

    def test_decimal(self):
        assert coerce_number("3.14") == pytest.approx(3.14)

    def test_leading_dot(self):
        assert coerce_number(".5") == pytest.approx(0.5)

    def test_thousands_separators(self):
        assert coerce_number("1,234,567.5") == pytest.approx(1234567.5)

    def test_currency(self):
        assert coerce_number("$1,200") == 1200.0

    def test_percent(self):
        assert coerce_number("12%") == 12.0

    def test_plus_sign(self):
        assert coerce_number("+8") == 8.0

    def test_not_a_number(self):
        assert coerce_number("hello") is None

    def test_mixed_garbage(self):
        assert coerce_number("12abc") is None

    def test_empty(self):
        assert coerce_number("") is None

    def test_bad_separator_grouping(self):
        assert coerce_number("1,23") is None


class TestParseValue:
    def test_number(self):
        value = parse_value("31")
        assert value.type is ValueType.NUMBER
        assert value.as_number() == 31.0

    def test_text(self):
        value = parse_value("john smith")
        assert value.type is ValueType.TEXT
        assert value.raw == "john smith"

    def test_iso_date(self):
        value = parse_value("2021-03-15")
        assert value.type is ValueType.DATE
        assert value.typed == (2021, 3, 15)

    def test_written_date(self):
        value = parse_value("march 15, 2021")
        assert value.type is ValueType.DATE
        assert value.typed == (2021, 3, 15)

    def test_bool_true(self):
        assert parse_value("yes").typed is True

    def test_bool_false(self):
        assert parse_value("false").typed is False

    def test_null_markers(self):
        for marker in ("", "-", "n/a", "none", "NULL"):
            assert parse_value(marker).is_null, marker

    def test_preserves_raw(self):
        value = parse_value("  $1,200  ")
        assert value.raw == "  $1,200  "
        assert value.as_number() == 1200.0

    def test_invalid_date_degrades(self):
        value = parse_value("2021-13-45")
        assert value.type is not ValueType.DATE


class TestValueComparisons:
    def test_numeric_ordering(self):
        assert parse_value("5") < parse_value("12")

    def test_numeric_ordering_with_formatting(self):
        assert parse_value("$900") < parse_value("1,200")

    def test_text_ordering_case_insensitive(self):
        assert parse_value("Apple") < parse_value("banana")

    def test_null_sorts_first(self):
        assert parse_value("-") < parse_value("0")

    def test_date_ordering(self):
        assert parse_value("2020-01-31") < parse_value("2020-02-01")

    def test_equals_numeric_text(self):
        assert parse_value("1200").equals(parse_value("1,200.0"))

    def test_equals_case_insensitive(self):
        assert parse_value("Hawks").equals(parse_value("hawks"))

    def test_not_equals(self):
        assert not parse_value("12").equals(parse_value("13"))

    def test_null_equals_null_only(self):
        assert parse_value("-").equals(parse_value("n/a"))
        assert not parse_value("-").equals(parse_value("x"))

    def test_equals_dates_across_surface_forms(self):
        # Regression: equality used to fall through to the case-folded
        # raw strings, so the same day written two ways compared unequal.
        assert parse_value("January 5, 2020").equals(parse_value("2020-01-05"))
        assert parse_value("2020-01-05").equals(parse_value("january 5 2020"))

    def test_equals_dates_distinguishes_days(self):
        assert not parse_value("January 5, 2020").equals(
            parse_value("2020-01-06")
        )

    def test_equals_booleans_across_surface_forms(self):
        assert parse_value("yes").equals(parse_value("TRUE"))
        assert not parse_value("yes").equals(parse_value("no"))


class TestCanonicalKey:
    def test_numeric_surface_forms_share_one_key(self):
        # Regression: distinct-counting used to key on the lowered raw
        # string, so these counted as three distinct values.
        keys = {
            parse_value(raw).canonical_key()
            for raw in ("1,000", "1000", "$1,000")
        }
        assert len(keys) == 1

    def test_distinct_numbers_get_distinct_keys(self):
        assert (
            parse_value("1,000").canonical_key()
            != parse_value("1,001").canonical_key()
        )

    def test_date_surface_forms_share_one_key(self):
        assert (
            parse_value("January 5, 2020").canonical_key()
            == parse_value("2020-01-05").canonical_key()
        )

    def test_text_key_is_case_and_space_folded(self):
        assert (
            parse_value(" Hawks ").canonical_key()
            == parse_value("hawks").canonical_key()
        )

    def test_consistent_with_equals(self):
        raws = ["1,000", "1000", "$1,000", "500", "2020-01-05",
                "January 5, 2020", "hawks", "HAWKS", "yes", "true"]
        values = [parse_value(raw) for raw in raws]
        for a in values:
            for b in values:
                assert a.equals(b) == (
                    a.canonical_key() == b.canonical_key()
                ), (a.raw, b.raw)


class TestImpossibleDates:
    def test_february_31_degrades_to_text(self):
        # Regression: the parser used to accept any day up to 31 in any
        # month, so "February 31" became a DATE.
        assert parse_value("February 31, 2020").type is ValueType.TEXT
        assert parse_value("2020-02-31").type is ValueType.TEXT

    def test_leap_day_is_a_date_only_in_leap_years(self):
        assert parse_value("February 29, 2020").type is ValueType.DATE
        assert parse_value("February 29, 2021").type is ValueType.TEXT

    def test_thirty_day_months_reject_day_31(self):
        assert parse_value("April 31, 2021").type is ValueType.TEXT
        assert parse_value("2021-06-31").type is ValueType.TEXT
        assert parse_value("2021-07-31").type is ValueType.DATE

    def test_days_in_month_century_rules(self):
        assert days_in_month(2000, 2) == 29  # divisible by 400: leap
        assert days_in_month(1900, 2) == 28  # divisible by 100 only: not
        assert days_in_month(2024, 2) == 29
        assert days_in_month(2023, 2) == 28
        assert days_in_month(2023, 12) == 31


class TestParseValueCache:
    def test_returns_shared_instance(self):
        assert parse_value("cache-probe-31") is parse_value("cache-probe-31")

    def test_cache_free_parse_agrees(self):
        for raw in ("31", "2020-01-05", "yes", "-", "hello", "$1,200"):
            cached = parse_value(raw)
            fresh = parse_value.__wrapped__(raw)
            assert cached is not fresh
            assert cached == fresh
            assert cached.equals(fresh)

    def test_memo_slots_do_not_leak_into_semantics(self):
        warm = parse_value.__wrapped__("1,234")
        warm.as_number()       # populates the coercion memo
        warm.canonical_key()   # populates the canonical-key memo
        _ = warm < parse_value.__wrapped__("2,000")  # populates sort key
        cold = parse_value.__wrapped__("1,234")
        assert warm == cold
        assert hash(warm) == hash(cold)
        assert repr(warm) == repr(cold)
        unpickled = pickle.loads(pickle.dumps(warm))
        assert unpickled == cold
        assert unpickled.canonical_key() == cold.canonical_key()


class TestAsNumber:
    def test_bool_to_number(self):
        assert Value.boolean(True).as_number() == 1.0

    def test_date_to_number_orders(self):
        early = parse_value("2020-01-31").as_number()
        late = parse_value("2020-02-01").as_number()
        assert early < late

    def test_text_number_lazy_parse(self):
        assert Value.text("7,000").as_number() == 7000.0

    def test_text_raises(self):
        with pytest.raises(ValueParseError):
            Value.text("hello").as_number()


class TestFormatNumber:
    def test_integer(self):
        assert format_number(42.0) == "42"

    def test_decimal(self):
        assert format_number(1.5) == "1.5"

    def test_negative_integer(self):
        assert format_number(-3.0) == "-3"

    def test_infinity(self):
        assert format_number(math.inf) == "inf"


class TestInferType:
    def test_all_numbers(self):
        values = [parse_value(s) for s in ("1", "2", "3")]
        assert infer_type(values) is ValueType.NUMBER

    def test_mixed_degrades_to_text(self):
        values = [parse_value(s) for s in ("1", "two")]
        assert infer_type(values) is ValueType.TEXT

    def test_nulls_ignored(self):
        values = [parse_value(s) for s in ("1", "-", "3")]
        assert infer_type(values) is ValueType.NUMBER

    def test_all_null_is_text(self):
        values = [parse_value("-"), parse_value("")]
        assert infer_type(values) is ValueType.TEXT

    def test_dates(self):
        values = [parse_value("2020-01-01"), parse_value("2021-02-02")]
        assert infer_type(values) is ValueType.DATE


class TestPercentAndAccountingForms:
    """Satellite regression tests: percent strings and paren-negatives
    must coerce as NUMBER and share canonical keys with the plain forms."""

    def test_percent_string_is_number(self):
        value = parse_value("12.5%")
        assert value.type is ValueType.NUMBER
        assert value.typed == pytest.approx(12.5)

    def test_percent_canonical_key_matches_plain(self):
        assert parse_value("12.5%").canonical_key() == \
            parse_value("12.5").canonical_key()

    def test_percent_equals_plain(self):
        assert parse_value("12.5%").equals(parse_value("12.5"))

    def test_paren_negative_coerces(self):
        assert coerce_number("(1,200)") == -1200.0

    def test_paren_negative_with_decimal(self):
        assert coerce_number("(3.5)") == pytest.approx(-3.5)

    def test_paren_negative_with_currency(self):
        assert coerce_number("($400)") == -400.0

    def test_paren_negative_parses_as_number(self):
        value = parse_value("(1,200)")
        assert value.type is ValueType.NUMBER
        assert value.typed == -1200.0

    def test_paren_canonical_key_matches_plain_negative(self):
        assert parse_value("(1,200)").canonical_key() == \
            parse_value("-1200").canonical_key()

    def test_paren_equals_plain_negative(self):
        assert parse_value("(1,200)").equals(parse_value("-1200"))
        assert parse_value("-1200").equals(parse_value("(1,200)"))

    def test_inner_sign_is_not_accounting(self):
        # "(-5)" is not the accounting convention; double negation would
        # silently flip its meaning.
        assert coerce_number("(-5)") is None
        assert parse_value("(-5)").type is ValueType.TEXT

    def test_paren_text_stays_text(self):
        assert coerce_number("(n/a)") is None
        assert parse_value("(n/a)").type is ValueType.TEXT

    def test_nested_parens_rejected(self):
        assert coerce_number("((5))") is None

    def test_infer_type_accepts_accounting_columns(self):
        values = [parse_value(s) for s in ("1,200", "(300)", "45%")]
        assert infer_type(values) is ValueType.NUMBER
