"""Unit tests for typed cell values and parsing."""

import math

import pytest

from repro.errors import ValueParseError
from repro.tables.values import (
    Value,
    ValueType,
    coerce_number,
    format_number,
    infer_type,
    parse_value,
)


class TestCoerceNumber:
    def test_plain_integer(self):
        assert coerce_number("42") == 42.0

    def test_negative(self):
        assert coerce_number("-17") == -17.0

    def test_decimal(self):
        assert coerce_number("3.14") == pytest.approx(3.14)

    def test_leading_dot(self):
        assert coerce_number(".5") == pytest.approx(0.5)

    def test_thousands_separators(self):
        assert coerce_number("1,234,567.5") == pytest.approx(1234567.5)

    def test_currency(self):
        assert coerce_number("$1,200") == 1200.0

    def test_percent(self):
        assert coerce_number("12%") == 12.0

    def test_plus_sign(self):
        assert coerce_number("+8") == 8.0

    def test_not_a_number(self):
        assert coerce_number("hello") is None

    def test_mixed_garbage(self):
        assert coerce_number("12abc") is None

    def test_empty(self):
        assert coerce_number("") is None

    def test_bad_separator_grouping(self):
        assert coerce_number("1,23") is None


class TestParseValue:
    def test_number(self):
        value = parse_value("31")
        assert value.type is ValueType.NUMBER
        assert value.as_number() == 31.0

    def test_text(self):
        value = parse_value("john smith")
        assert value.type is ValueType.TEXT
        assert value.raw == "john smith"

    def test_iso_date(self):
        value = parse_value("2021-03-15")
        assert value.type is ValueType.DATE
        assert value.typed == (2021, 3, 15)

    def test_written_date(self):
        value = parse_value("march 15, 2021")
        assert value.type is ValueType.DATE
        assert value.typed == (2021, 3, 15)

    def test_bool_true(self):
        assert parse_value("yes").typed is True

    def test_bool_false(self):
        assert parse_value("false").typed is False

    def test_null_markers(self):
        for marker in ("", "-", "n/a", "none", "NULL"):
            assert parse_value(marker).is_null, marker

    def test_preserves_raw(self):
        value = parse_value("  $1,200  ")
        assert value.raw == "  $1,200  "
        assert value.as_number() == 1200.0

    def test_invalid_date_degrades(self):
        value = parse_value("2021-13-45")
        assert value.type is not ValueType.DATE


class TestValueComparisons:
    def test_numeric_ordering(self):
        assert parse_value("5") < parse_value("12")

    def test_numeric_ordering_with_formatting(self):
        assert parse_value("$900") < parse_value("1,200")

    def test_text_ordering_case_insensitive(self):
        assert parse_value("Apple") < parse_value("banana")

    def test_null_sorts_first(self):
        assert parse_value("-") < parse_value("0")

    def test_date_ordering(self):
        assert parse_value("2020-01-31") < parse_value("2020-02-01")

    def test_equals_numeric_text(self):
        assert parse_value("1200").equals(parse_value("1,200.0"))

    def test_equals_case_insensitive(self):
        assert parse_value("Hawks").equals(parse_value("hawks"))

    def test_not_equals(self):
        assert not parse_value("12").equals(parse_value("13"))

    def test_null_equals_null_only(self):
        assert parse_value("-").equals(parse_value("n/a"))
        assert not parse_value("-").equals(parse_value("x"))


class TestAsNumber:
    def test_bool_to_number(self):
        assert Value.boolean(True).as_number() == 1.0

    def test_date_to_number_orders(self):
        early = parse_value("2020-01-31").as_number()
        late = parse_value("2020-02-01").as_number()
        assert early < late

    def test_text_number_lazy_parse(self):
        assert Value.text("7,000").as_number() == 7000.0

    def test_text_raises(self):
        with pytest.raises(ValueParseError):
            Value.text("hello").as_number()


class TestFormatNumber:
    def test_integer(self):
        assert format_number(42.0) == "42"

    def test_decimal(self):
        assert format_number(1.5) == "1.5"

    def test_negative_integer(self):
        assert format_number(-3.0) == "-3"

    def test_infinity(self):
        assert format_number(math.inf) == "inf"


class TestInferType:
    def test_all_numbers(self):
        values = [parse_value(s) for s in ("1", "2", "3")]
        assert infer_type(values) is ValueType.NUMBER

    def test_mixed_degrades_to_text(self):
        values = [parse_value(s) for s in ("1", "two")]
        assert infer_type(values) is ValueType.TEXT

    def test_nulls_ignored(self):
        values = [parse_value(s) for s in ("1", "-", "3")]
        assert infer_type(values) is ValueType.NUMBER

    def test_all_null_is_text(self):
        values = [parse_value("-"), parse_value("")]
        assert infer_type(values) is ValueType.TEXT

    def test_dates(self):
        values = [parse_value("2020-01-01"), parse_value("2021-02-02")]
        assert infer_type(values) is ValueType.DATE
