"""Tests for the auto program generator (paper future work)."""

import random
from collections import Counter

import pytest

from repro.programs.logic.generator import (
    AutoGenConfig,
    AutoProgramGenerator,
)
from repro.templates import logic2text_pool


@pytest.fixture
def generator(rng):
    return AutoProgramGenerator(rng=rng)


class TestGeneration:
    def test_programs_execute_to_truth_values(self, generator, players_table):
        programs = generator.generate_many(players_table, 20)
        assert len(programs) >= 15
        for program in programs:
            result = program.execute(players_table)
            assert result.truth is not None

    def test_novel_structures_beyond_pool(self, generator, players_table):
        """Nested filters produce shapes absent from the fixed pool."""
        pool_patterns = {t.pattern for t in logic2text_pool()}
        generator = AutoProgramGenerator(
            rng=random.Random(5), config=AutoGenConfig(max_depth=2)
        )
        templates = generator.induce_templates([players_table], per_table=30)
        novel = [t for t in templates if t.pattern not in pool_patterns]
        assert novel, "auto generation should reach new program shapes"

    def test_shape_coverage(self, players_table):
        generator = AutoProgramGenerator(rng=random.Random(1))
        ops = Counter()
        for program in generator.generate_many(players_table, 60):
            ops[program.root.op] += 1
        # several distinct root operators appear
        assert len(ops) >= 4

    def test_shape_weights_respected(self, players_table):
        config = AutoGenConfig(shape_weights={"count": 1.0})
        generator = AutoProgramGenerator(
            rng=random.Random(2), config=config
        )
        for program in generator.generate_many(players_table, 10):
            assert program.root.op == "eq"
            assert "count {" in program.source

    def test_weights_from_pool(self):
        weights = AutoProgramGenerator.shape_weights_from_pool(
            list(logic2text_pool())
        )
        assert weights
        assert abs(sum(weights.values()) - 1.0) < 1e-9
        assert "superlative" in weights

    def test_induced_templates_are_deduplicated(self, players_table):
        generator = AutoProgramGenerator(rng=random.Random(3))
        templates = generator.induce_templates([players_table], per_table=25)
        signatures = [t.signature() for t in templates]
        assert len(signatures) == len(set(signatures))

    def test_induced_templates_resample(self, players_table, rng):
        """Induced templates plug into the standard sampler."""
        from repro.sampling import ProgramSampler

        generator = AutoProgramGenerator(rng=random.Random(4))
        templates = generator.induce_templates([players_table], per_table=15)
        sampler = ProgramSampler(rng)
        produced = 0
        for template in templates:
            if sampler.try_sample(template, players_table) is not None:
                produced += 1
        assert produced >= len(templates) // 3

    def test_all_numeric_table_unsupported_shapes_skipped(self, rng):
        """Tables without numeric columns still yield some programs."""
        from repro.tables import Table

        table = Table.from_rows(
            ["name", "kind"],
            [["a", "x"], ["b", "y"], ["c", "x"]],
        )
        generator = AutoProgramGenerator(rng=rng)
        programs = generator.generate_many(table, 10)
        assert programs  # lookup/count/majority/unique shapes still work
