"""Property tests for logical-form and arithmetic executors."""

from hypothesis import given, settings, strategies as st

from repro.programs.arith import parse_arith
from repro.programs.logic import parse_logic
from repro.tables.table import Table

_names = st.sampled_from(["alpha", "beta", "gamma", "delta", "epsilon"])
_scores = st.integers(min_value=-30, max_value=30)


@st.composite
def score_tables(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    names = draw(
        st.lists(_names, min_size=n, max_size=n, unique=True)
    )
    rows = [[name, str(draw(_scores)), str(draw(_scores))] for name in names]
    return Table.from_rows(
        ["name", "score", "bonus"], rows, row_name_column="name"
    )


class TestLogicInvariants:
    @settings(max_examples=80, deadline=None)
    @given(table=score_tables(), threshold=_scores)
    def test_filter_partition(self, table, threshold):
        """filter_greater + filter_less_eq partition the rows."""
        above = parse_logic(
            f"count {{ filter_greater {{ all_rows ; score ; {threshold} }} }}"
        ).execute(table)
        at_most = parse_logic(
            f"count {{ filter_less_eq {{ all_rows ; score ; {threshold} }} }}"
        ).execute(table)
        total = float(above.single.as_number()) + float(at_most.single.as_number())
        assert total == table.n_rows

    @settings(max_examples=80, deadline=None)
    @given(table=score_tables())
    def test_argmax_is_max(self, table):
        """hop(argmax, score) equals max(score)."""
        argmax_value = parse_logic(
            "hop { argmax { all_rows ; score } ; score }"
        ).execute(table)
        max_value = parse_logic("max { all_rows ; score }").execute(table)
        assert argmax_value.single.as_number() == max_value.single.as_number()

    @settings(max_examples=80, deadline=None)
    @given(table=score_tables())
    def test_nth_max_1_is_max(self, table):
        nth = parse_logic("nth_max { all_rows ; score ; 1 }").execute(table)
        top = parse_logic("max { all_rows ; score }").execute(table)
        assert nth.single.as_number() == top.single.as_number()

    @settings(max_examples=80, deadline=None)
    @given(table=score_tables())
    def test_sum_equals_avg_times_count(self, table):
        total = parse_logic("sum { all_rows ; score }").execute(table)
        average = parse_logic("avg { all_rows ; score }").execute(table)
        assert abs(
            total.single.as_number()
            - average.single.as_number() * table.n_rows
        ) < 1e-6

    @settings(max_examples=80, deadline=None)
    @given(table=score_tables(), threshold=_scores)
    def test_all_implies_most(self, table, threshold):
        """all_greater(x) implies most_greater(x) on non-empty tables."""
        all_result = parse_logic(
            f"all_greater {{ all_rows ; score ; {threshold} }}"
        ).execute(table)
        most_result = parse_logic(
            f"most_greater {{ all_rows ; score ; {threshold} }}"
        ).execute(table)
        if all_result.truth:
            assert most_result.truth

    @settings(max_examples=60, deadline=None)
    @given(table=score_tables())
    def test_not_is_involution(self, table):
        inner = parse_logic("greater { max { all_rows ; score } ; 0 }")
        double = parse_logic(
            "not { not { greater { max { all_rows ; score } ; 0 } } }"
        )
        assert inner.execute(table).truth == double.execute(table).truth


class TestArithInvariants:
    @settings(max_examples=80, deadline=None)
    @given(table=score_tables(), data=st.data())
    def test_subtract_antisymmetric(self, table, data):
        names = [table.row_name(i) for i in range(table.n_rows)]
        a = data.draw(st.sampled_from(names))
        b = data.draw(st.sampled_from(names))
        forward = parse_arith(
            f"subtract ( the {a} of score , the {b} of score )"
        ).execute(table)
        backward = parse_arith(
            f"subtract ( the {b} of score , the {a} of score )"
        ).execute(table)
        assert (
            forward.single.as_number() == -backward.single.as_number()
        )

    @settings(max_examples=80, deadline=None)
    @given(table=score_tables())
    def test_table_sum_matches_logic_sum(self, table):
        arith = parse_arith("table_sum ( score )").execute(table)
        logic = parse_logic("sum { all_rows ; score }").execute(table)
        assert arith.single.as_number() == logic.single.as_number()

    @settings(max_examples=80, deadline=None)
    @given(table=score_tables())
    def test_range_non_negative(self, table):
        result = parse_arith(
            "subtract ( table_max ( score ) , table_min ( score ) )"
        ).execute(table)
        assert result.single.as_number() >= 0

    @settings(max_examples=60, deadline=None)
    @given(table=score_tables(), data=st.data())
    def test_add_commutative(self, table, data):
        names = [table.row_name(i) for i in range(table.n_rows)]
        a = data.draw(st.sampled_from(names))
        b = data.draw(st.sampled_from(names))
        ab = parse_arith(
            f"add ( the {a} of score , the {b} of bonus )"
        ).execute(table)
        ba = parse_arith(
            f"add ( the {b} of bonus , the {a} of score )"
        ).execute(table)
        assert ab.single.as_number() == ba.single.as_number()
