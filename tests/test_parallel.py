"""Serial ≡ parallel determinism and the executor's plumbing."""

import json

import pytest

import repro.parallel as parallel
from repro.parallel import (
    _backfill_missing,
    generate_parallel,
    pick_start_method,
    shard_indices,
)
from repro.pipelines import UCTR, UCTRConfig
from repro.runtime import RetryPolicy
from repro.tables import Paragraph, Table, TableContext
from repro.telemetry import Telemetry


def _context(i: int) -> TableContext:
    table = Table.from_rows(
        header=["player", "team", "points", "rebounds"],
        raw_rows=[
            [f"p{i}{j}", f"team{j % 3}", str(10 + 3 * j + i), str(j + i)]
            for j in range(5)
        ],
        title=f"stats {i}",
        row_name_column="player",
    )
    text = (
        f"For newcomer{i} , the team is team9 and the points is {20 + i} "
        f"and the rebounds is {3 + i} ."
    )
    return TableContext(
        table=table, uid=f"ctx{i}", paragraphs=(Paragraph(text=text),)
    )


@pytest.fixture(scope="module")
def contexts():
    return [_context(i) for i in range(6)]


@pytest.fixture(scope="module")
def framework(contexts):
    framework = UCTR(
        UCTRConfig(program_kinds=("sql", "logic"), samples_per_context=6,
                   seed=7)
    )
    return framework.fit(contexts)


def _fingerprint(samples):
    return json.dumps([s.to_json() for s in samples], sort_keys=True)


class TestDeterminism:
    def test_workers_do_not_change_output(self, framework, contexts):
        baseline = _fingerprint(framework.generate(contexts, workers=1))
        for workers in (2, 4):
            assert _fingerprint(
                framework.generate(contexts, workers=workers)
            ) == baseline, f"workers={workers} diverged from serial"

    def test_budget_respected_in_parallel(self, framework, contexts):
        serial = framework.generate(contexts, budget=9, workers=1)
        parallel_run = framework.generate(contexts, budget=9, workers=2)
        assert _fingerprint(serial) == _fingerprint(parallel_run)
        assert len(parallel_run) == 9

    def test_per_context_stream_matches_batch(self, framework, contexts):
        batch = framework.generate(contexts, workers=2)
        solo = framework.generate_for_context(contexts[3], context_index=3)
        from_batch = [s for s in batch if s.uid.startswith("ctx3-")]
        assert _fingerprint(solo) == _fingerprint(from_batch)

    def test_repeated_runs_are_stable(self, framework, contexts):
        assert _fingerprint(framework.generate(contexts, workers=2)) == \
            _fingerprint(framework.generate(contexts, workers=2))


class TestExecutorPlumbing:
    def test_shard_indices_partition(self):
        for count in (1, 2, 5, 17, 64):
            for workers in (1, 2, 4):
                chunks = shard_indices(count, workers)
                flat = [i for chunk in chunks for i in chunk]
                assert flat == list(range(count))
                assert all(chunk for chunk in chunks)

    def test_shard_indices_empty(self):
        assert shard_indices(0, 4) == []

    def test_pick_start_method_on_this_platform(self):
        # CPython always offers at least spawn; the contract is just
        # "a usable method or None", never an exception.
        assert pick_start_method() in ("fork", "spawn", None)

    def test_fallback_without_start_method(
        self, monkeypatch, framework, contexts
    ):
        monkeypatch.setattr(parallel, "pick_start_method", lambda: None)
        telemetry = Telemetry()
        results = generate_parallel(
            framework.generation_state(), contexts, 4, telemetry
        )
        flat = [s for produced in results for s in produced]
        assert _fingerprint(flat) == _fingerprint(
            framework.generate(contexts, workers=1)
        )
        assert telemetry.count("drops", "parallel/fallback:no_start_method") == 1

    def test_worker_telemetry_merged(self, framework, contexts):
        framework.generate(contexts, workers=2)
        telemetry = framework.last_telemetry
        assert telemetry.count("attempts") > 0
        for pipeline in telemetry.pipelines():
            if pipeline == "parallel":
                continue
            assert telemetry.reconciles(pipeline), pipeline

    def test_generation_state_requires_fit(self, contexts):
        unfitted = UCTR(UCTRConfig())
        with pytest.raises(RuntimeError):
            unfitted.generation_state()

    def test_single_context_skips_pool(self, framework, contexts):
        # workers capped at len(contexts); one context runs in-process
        telemetry = Telemetry()
        results = generate_parallel(
            framework.generation_state(), contexts[:1], 8, telemetry
        )
        assert len(results) == 1
        assert results[0]

    def test_skip_indices_come_back_empty(self, framework, contexts):
        telemetry = Telemetry()
        results = generate_parallel(
            framework.generation_state(), contexts, 2, telemetry,
            skip=(0, 4),
        )
        assert results[0] == [] and results[4] == []
        serial = generate_parallel(
            framework.generation_state(), contexts, 1, Telemetry(),
            skip=(0, 4),
        )
        assert _fingerprint(
            [s for produced in results for s in produced]
        ) == _fingerprint([s for produced in serial for s in produced])

    def test_on_result_fires_once_per_context(self, framework, contexts):
        seen = []
        generate_parallel(
            framework.generation_state(), contexts, 2, Telemetry(),
            on_result=lambda index, samples: seen.append(index),
        )
        assert sorted(seen) == list(range(len(contexts)))


class TestBackfill:
    """The safety net under the pool driver (no more silent chunk loss)."""

    def test_missing_indices_regenerated_and_counted(
        self, framework, contexts
    ):
        state = framework.generation_state()
        serial = generate_parallel(state, contexts, 1, Telemetry())
        results = list(serial)
        results[1] = None
        results[4] = None  # simulate chunks the rounds never filled
        telemetry = Telemetry()
        filled = []
        missing = _backfill_missing(
            state, contexts, results, telemetry, RetryPolicy(),
            on_result=lambda index, samples: filled.append(index),
        )
        assert missing == [1, 4]
        assert filled == [1, 4]
        # regenerated in-process, byte-identical to the serial output
        assert _fingerprint(results[1]) == _fingerprint(serial[1])
        assert _fingerprint(results[4]) == _fingerprint(serial[4])
        # counted exactly once per missing context, never silently
        assert telemetry.count("retries", "backfill/missing_chunk") == 2

    def test_nothing_missing_is_a_noop(self, framework, contexts):
        state = framework.generation_state()
        results = generate_parallel(state, contexts, 1, Telemetry())
        telemetry = Telemetry()
        assert _backfill_missing(
            state, contexts, results, telemetry, RetryPolicy()
        ) == []
        assert telemetry.count("retries") == 0

    def test_backfill_quarantines_poisoned_context(
        self, framework, contexts
    ):
        from repro.runtime.faults import FaultPlan, FaultSpec, injected

        state = framework.generation_state()
        results = [[] for _ in contexts]
        results[2] = None
        telemetry = Telemetry()
        with injected(FaultPlan({2: FaultSpec(kind="raise")})):
            _backfill_missing(
                state, contexts, results, telemetry,
                RetryPolicy(max_attempts=2, backoff_base=0.0),
            )
        assert results[2] == []
        events = telemetry.events("quarantine")
        assert [e["index"] for e in events] == [2]
