"""Unit tests for the SQL executor, including highlighted-cell tracking."""

import pytest

from repro.errors import ProgramExecutionError, ProgramTypeError
from repro.programs.sql import parse_sql


def run(table, sql):
    return parse_sql(sql).execute(table)


class TestProjectionAndFilter:
    def test_lookup(self, players_table):
        result = run(players_table, "select team from w where player = 'bo chen'")
        assert result.denotation() == ["heat"]

    def test_numeric_equality_across_formats(self, players_table):
        result = run(players_table, "select player from w where points = 31")
        assert result.denotation() == ["john smith"]

    def test_string_equality_case_insensitive(self, players_table):
        result = run(players_table, "select player from w where team = 'HAWKS'")
        assert result.denotation() == ["john smith", "alan reed"]

    def test_neq(self, players_table):
        result = run(players_table, "select player from w where team != 'hawks'")
        assert len(result.values) == 3

    def test_greater(self, players_table):
        result = run(players_table, "select player from w where points > 25")
        assert result.denotation() == ["john smith", "bo chen"]

    def test_less_equal(self, players_table):
        result = run(players_table, "select player from w where points <= 17")
        assert result.denotation() == ["alan reed", "raj patel"]

    def test_conjunction(self, players_table):
        result = run(
            players_table,
            "select player from w where team = 'bulls' and points > 15",
        )
        assert result.denotation() == ["mike jones"]

    def test_empty_filter_returns_empty(self, players_table):
        result = run(players_table, "select player from w where team = 'jazz'")
        assert result.denotation() == []
        assert result.is_empty

    def test_multi_column_projection(self, players_table):
        result = run(
            players_table, "select player , points from w where team = 'heat'"
        )
        assert result.denotation() == ["bo chen", "28"]


class TestOrderLimit:
    def test_argmax_idiom(self, players_table):
        result = run(
            players_table, "select player from w order by points desc limit 1"
        )
        assert result.denotation() == ["john smith"]

    def test_argmin_idiom(self, players_table):
        result = run(
            players_table, "select player from w order by points asc limit 1"
        )
        assert result.denotation() == ["raj patel"]

    def test_top_n(self, players_table):
        result = run(
            players_table, "select player from w order by points desc limit 2"
        )
        assert result.denotation() == ["john smith", "bo chen"]

    def test_filter_then_order(self, players_table):
        result = run(
            players_table,
            "select player from w where team = 'hawks' "
            "order by rebounds desc limit 1",
        )
        assert result.denotation() == ["john smith"]


class TestAggregates:
    def test_count_star(self, players_table):
        assert run(players_table, "select count(*) from w").denotation() == ["5"]

    def test_count_filtered(self, players_table):
        result = run(
            players_table, "select count(*) from w where team = 'bulls'"
        )
        assert result.denotation() == ["2"]

    def test_count_distinct(self, players_table):
        result = run(players_table, "select count(distinct team) from w")
        assert result.denotation() == ["3"]

    def test_sum(self, players_table):
        assert run(players_table, "select sum(points) from w").denotation() == ["110"]

    def test_avg(self, players_table):
        assert run(players_table, "select avg(points) from w").denotation() == ["22"]

    def test_min_max(self, players_table):
        assert run(players_table, "select max(points) from w").denotation() == ["31"]
        assert run(players_table, "select min(points) from w").denotation() == ["12"]

    def test_diff(self, players_table):
        result = run(players_table, "select max(points) - min(points) from w")
        assert result.denotation() == ["19"]

    def test_aggregate_on_text_column_raises(self, players_table):
        with pytest.raises(ProgramTypeError):
            run(players_table, "select sum(team) from w")

    def test_aggregate_over_empty_filter(self, players_table):
        result = run(
            players_table, "select sum(points) from w where team = 'jazz'"
        )
        assert result.is_empty


class TestSemanticEquality:
    """Regressions: equality and distinctness on typed/formatted cells."""

    @pytest.fixture
    def releases_table(self):
        from repro.tables import Table

        return Table.from_rows(
            ["album", "released", "sales"],
            [
                ["alpha", "January 5, 2020", "1,000"],
                ["beta", "2020-01-05", "1000"],
                ["gamma", "March 1, 2021", "$1,000"],
                ["delta", "2021-03-02", "500"],
            ],
        )

    def test_date_literal_matches_written_date(self, releases_table):
        # "January 5, 2020" and '2020-01-05' are the same day; the
        # filter used to compare their raw strings and match nothing.
        result = run(
            releases_table,
            "select album from w where released = '2020-01-05'",
        )
        assert result.denotation() == ["alpha", "beta"]

    def test_written_date_literal_matches_iso_cell(self, releases_table):
        result = run(
            releases_table,
            "select album from w where released = 'March 2, 2021'",
        )
        assert result.denotation() == ["delta"]

    def test_date_inequality_uses_typed_payload(self, releases_table):
        result = run(
            releases_table,
            "select album from w where released != '2020-01-05'",
        )
        assert result.denotation() == ["gamma", "delta"]

    def test_count_distinct_collapses_numeric_formats(self, releases_table):
        # "1,000", "1000", and "$1,000" are one value; the old raw-string
        # key counted them as three.
        result = run(releases_table, "select count(distinct sales) from w")
        assert result.denotation() == ["2"]

    def test_count_distinct_collapses_date_formats(self, releases_table):
        result = run(releases_table, "select count(distinct released) from w")
        assert result.denotation() == ["3"]


class TestHighlightedCells:
    def test_filter_highlights_matching_cells(self, players_table):
        result = run(players_table, "select team from w where player = 'bo chen'")
        assert (3, "player") in result.highlighted_cells
        assert (3, "team") in result.highlighted_cells

    def test_projection_highlights_output(self, players_table):
        result = run(players_table, "select points from w where team = 'bulls'")
        assert (1, "points") in result.highlighted_cells
        assert (4, "points") in result.highlighted_cells

    def test_order_by_highlights_sort_column(self, players_table):
        result = run(
            players_table, "select player from w order by points desc limit 1"
        )
        highlighted_columns = {column for _, column in result.highlighted_cells}
        assert "points" in highlighted_columns

    def test_count_star_no_cell_highlight_without_filter(self, players_table):
        result = run(players_table, "select count(*) from w")
        assert result.highlighted_cells == frozenset()


class TestErrors:
    def test_unknown_column(self, players_table):
        from repro.errors import ColumnNotFoundError

        with pytest.raises(ColumnNotFoundError):
            run(players_table, "select nothing from w")

    def test_arithmetic_needs_scalars(self, players_table):
        with pytest.raises(ProgramExecutionError):
            run(players_table, "select points - rebounds from w")


class TestNullHandling:
    @pytest.fixture
    def gappy(self):
        from repro.tables import Table

        return Table.from_rows(
            ["name", "score"],
            [["a", "1"], ["b", "n/a"], ["c", "3"]],
        )

    def test_nulls_skipped_in_projection(self, gappy):
        result = run(gappy, "select score from w")
        assert result.denotation() == ["1", "3"]

    def test_nulls_skipped_in_aggregates(self, gappy):
        assert run(gappy, "select sum(score) from w").denotation() == ["4"]
        assert run(gappy, "select count(score) from w").denotation() == ["2"]

    def test_null_never_matches_conditions(self, gappy):
        assert run(gappy, "select name from w where score > 0").denotation() == [
            "a",
            "c",
        ]
