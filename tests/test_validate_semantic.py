"""The semantic re-execution gate, its telemetry, and the v4 report."""

from dataclasses import replace

import pytest

from repro.cli import main as cli_main
from repro.io import save_samples
from repro.pipelines import UCTR, UCTRConfig
from repro.pipelines.samples import ReasoningSample, TaskType
from repro.sampling.labeler import ClaimLabel
from repro.telemetry import (
    Telemetry,
    build_report,
    load_report,
    render_summary,
    validate_report,
)
from repro.train import load_training_samples
from repro.validate import (
    SampleStatus,
    cache_free_table,
    validate_sample,
    validate_samples,
)


@pytest.fixture(scope="module")
def corpus():
    """One UCTR corpus over both fixture contexts, generated once."""
    import tests.conftest  # noqa: F401 (fixtures are function-scoped)
    from repro.tables import Paragraph, Table, TableContext

    table = Table.from_rows(
        header=["player", "team", "points", "rebounds"],
        raw_rows=[
            ["john smith", "hawks", "31", "7"],
            ["mike jones", "bulls", "22", "11"],
            ["alan reed", "hawks", "17", "4"],
            ["bo chen", "heat", "28", "9"],
            ["raj patel", "bulls", "12", "6"],
        ],
        title="player statistics",
        row_name_column="player",
    )
    context = TableContext(
        table=table,
        paragraphs=(
            Paragraph(
                text=(
                    "For dana cruz , the team is spurs and the points is 19 "
                    "and the rebounds is 8 . For john smith , the points "
                    "is 31 ."
                ),
                source="context",
            ),
        ),
        uid="ctx-gate",
        meta={
            "text_records": [
                {"player": "dana cruz", "team": "spurs", "points": "19",
                 "rebounds": "8"}
            ]
        },
    )
    framework = UCTR(
        UCTRConfig(
            program_kinds=("sql", "logic"), samples_per_context=10, seed=21
        )
    )
    framework.fit([context])
    return framework.generate([context])


def _executable(samples, task=None):
    """Samples the gate will actually re-execute (program, non-joint)."""
    picked = [
        s
        for s in samples
        if s.provenance.get("program")
        and "moved_row" not in s.provenance
        and "expansion_rows" not in s.provenance
        and (task is None or s.task is task)
    ]
    assert picked, "corpus produced no directly re-executable samples"
    return picked


class TestGateVerdicts:
    def test_fresh_corpus_is_clean(self, corpus):
        summary = validate_samples(corpus)
        assert summary.clean
        assert summary.checked == len(corpus)
        assert summary.counts["stale"] == 0
        assert summary.counts["unexecutable"] == 0
        assert summary.counts["ok"] > 0
        assert not summary.flagged

    def test_tampered_answer_is_stale(self, corpus):
        sample = _executable(corpus, TaskType.QUESTION_ANSWERING)[0]
        forged = replace(sample, answer=("999991",))
        verdict = validate_sample(forged)
        assert verdict.status is SampleStatus.STALE
        assert verdict.reason == "answer_mismatch"

    def test_tampered_label_is_stale(self, corpus):
        sample = _executable(corpus, TaskType.FACT_VERIFICATION)[0]
        flipped = (
            ClaimLabel.REFUTED
            if sample.label is ClaimLabel.SUPPORTED
            else ClaimLabel.SUPPORTED
        )
        verdict = validate_sample(replace(sample, label=flipped))
        assert verdict.status is SampleStatus.STALE
        assert verdict.reason == "label_mismatch"

    def test_tampered_program_is_unexecutable(self, corpus):
        sample = _executable(corpus)[0]
        forged = replace(
            sample,
            provenance={**sample.provenance, "program": "garbage((("},
        )
        verdict = validate_sample(forged)
        assert verdict.status is SampleStatus.UNEXECUTABLE
        assert verdict.reason == "parse_error"

    def test_gold_sample_skipped(self, players_context):
        gold = ReasoningSample(
            uid="gold-1",
            task=TaskType.QUESTION_ANSWERING,
            context=players_context,
            sentence="how many points did john smith score ?",
            answer=("31",),
        )
        verdict = validate_sample(gold)
        assert verdict.status is SampleStatus.SKIPPED
        assert verdict.reason == "no_program"

    def test_joint_evidence_skipped(self, corpus):
        sample = _executable(corpus)[0]
        moved = replace(
            sample, provenance={**sample.provenance, "moved_row": 1}
        )
        verdict = validate_sample(moved)
        assert verdict.status is SampleStatus.SKIPPED
        assert verdict.reason == "joint_evidence"

    def test_answer_equality_is_canonical(self, corpus):
        # "1,000" and "1000" are the same value under canonical_key, so
        # a cosmetic reformat of the stored answer must not read stale.
        sample = _executable(corpus, TaskType.QUESTION_ANSWERING)[0]
        from repro.tables.values import parse_value

        reformatted = tuple(
            f"{float(raw):,.1f}"
            if parse_value(raw).is_number
            else raw
            for raw in sample.answer
        )
        verdict = validate_sample(replace(sample, answer=reformatted))
        assert verdict.status is SampleStatus.OK


class TestCacheFreeTable:
    def test_rebuild_preserves_schema_and_values(self, players_table):
        rebuilt = cache_free_table(players_table)
        assert rebuilt.column_names == players_table.column_names
        assert rebuilt.n_rows == players_table.n_rows
        for row, fresh_row in zip(players_table.rows, rebuilt.rows):
            for cell, fresh in zip(row, fresh_row):
                assert cell.raw == fresh.raw
                assert cell.equals(fresh)
                # fresh Value instances, not the memoized ones
                assert cell is not fresh


class TestTelemetryAndReport:
    def test_counters_and_events(self, corpus):
        sample = _executable(corpus)[0]
        forged = replace(
            sample,
            provenance={**sample.provenance, "program": "garbage((("},
        )
        telemetry = Telemetry()
        summary = validate_samples(list(corpus) + [forged], telemetry)
        section = telemetry.section("validation")
        zeros = {status.value: 0 for status in SampleStatus}
        assert {**zeros, **section} == summary.counts
        assert summary.counts["unexecutable"] == 1
        assert summary.counts["stale"] == 0
        (event,) = telemetry.events("validation")
        assert event["uid"] == forged.uid
        assert event["status"] == "unexecutable"

    def test_v4_report_round_trip(self, corpus, tmp_path):
        from repro.telemetry import write_report

        telemetry = Telemetry()
        summary = validate_samples(corpus, telemetry)
        report = build_report(telemetry)
        assert report["schema_version"] == 4
        assert validate_report(report) == []
        assert report["validation"]["enabled"] is True
        assert report["validation"]["checked"] == summary.checked
        path = write_report(tmp_path / "r.json", report)
        assert validate_report(load_report(path)) == []
        assert "validation:" in render_summary(report)

    def test_report_without_gate_is_disabled_but_valid(self):
        report = build_report(Telemetry())
        assert report["validation"] == {"enabled": False}
        assert validate_report(report) == []

    def test_validator_rejects_flagged_count_mismatch(self, corpus):
        telemetry = Telemetry()
        validate_samples(corpus, telemetry)
        report = build_report(telemetry)
        report["validation"]["counts"]["stale"] += 1
        assert any(
            "flagged" in problem for problem in validate_report(report)
        )

    def test_summary_to_section_matches_report_shape(self, corpus):
        summary = validate_samples(corpus)
        section = summary.to_section()
        assert section["enabled"] is True
        assert set(section["counts"]) == {
            "ok", "stale", "unexecutable", "skipped"
        }
        assert section["flagged"] == []


class TestTrainingLoader:
    def test_stale_samples_dropped(self, corpus, tmp_path):
        sample = _executable(corpus, TaskType.QUESTION_ANSWERING)[0]
        forged = replace(
            sample, uid="forged-stale", answer=("999993",)
        )
        path = tmp_path / "train.jsonl"
        save_samples(path, list(corpus) + [forged])
        telemetry = Telemetry()
        loaded, summary = load_training_samples(
            path, validate=True, telemetry=telemetry
        )
        assert summary is not None
        assert summary.counts["stale"] == 1
        assert len(loaded) == len(corpus)
        assert all(s.uid != "forged-stale" for s in loaded)
        assert telemetry.section("validation")["stale"] == 1

    def test_without_validation_returns_everything(self, corpus, tmp_path):
        path = tmp_path / "train.jsonl"
        save_samples(path, corpus)
        loaded, summary = load_training_samples(path)
        assert summary is None
        assert len(loaded) == len(corpus)

    def test_integrity_still_enforced(self, corpus, tmp_path):
        from repro.errors import IntegrityError
        from repro.runtime.faults import CorruptionSpec, corrupt_file

        path = tmp_path / "train.jsonl"
        save_samples(path, corpus)
        corrupt_file(path, CorruptionSpec(kind="bit-flip", offset=40))
        with pytest.raises(IntegrityError):
            load_training_samples(path)


class TestCliValidate:
    def test_clean_corpus_passes(self, corpus, tmp_path, capsys):
        path = tmp_path / "clean.jsonl"
        save_samples(path, corpus)
        report_path = tmp_path / "report.json"
        code = cli_main(
            ["validate", str(path), "--report", str(report_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out
        assert "manifest ok" in out
        report = load_report(report_path)
        assert validate_report(report) == []
        assert report["validation"]["enabled"] is True

    def test_stale_corpus_fails(self, corpus, tmp_path, capsys):
        sample = _executable(corpus, TaskType.QUESTION_ANSWERING)[0]
        forged = replace(sample, uid="forged", answer=("999997",))
        path = tmp_path / "stale.jsonl"
        save_samples(path, list(corpus) + [forged])
        code = cli_main(["validate", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out
        assert "forged" in out

    def test_corrupted_corpus_fails_but_reports(
        self, corpus, tmp_path, capsys
    ):
        from repro.runtime.faults import CorruptionSpec, corrupt_file

        path = tmp_path / "bad.jsonl"
        save_samples(path, corpus)
        corrupt_file(path, CorruptionSpec(kind="bit-flip", offset=60))
        code = cli_main(["validate", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "manifest FAILED" in out
        assert "reject" in out

    def test_require_manifest(self, corpus, tmp_path, capsys):
        path = tmp_path / "bare.jsonl"
        save_samples(path, corpus, manifest=False)
        assert cli_main(["validate", str(path)]) == 0
        capsys.readouterr()
        code = cli_main(["validate", str(path), "--require-manifest"])
        assert code == 1


class TestExperimentsValidation:
    def test_runner_validates_cached_corpora(self, corpus):
        from repro.experiments import config as exp_config
        from repro.experiments.runner import validate_corpora

        exp_config.clear_caches()
        exp_config._SYNTH_CACHE[("players", "smoke", "full")] = list(corpus)
        try:
            telemetry = Telemetry()
            text, clean = validate_corpora(telemetry)
            assert clean
            assert "players/full@smoke" in text
            assert telemetry.section("validation")["ok"] > 0
        finally:
            exp_config.clear_caches()

    def test_runner_flags_stale_corpus(self, corpus):
        from repro.experiments import config as exp_config
        from repro.experiments.runner import validate_corpora

        sample = _executable(corpus, TaskType.QUESTION_ANSWERING)[0]
        forged = replace(sample, uid="forged", answer=("999999",))
        exp_config.clear_caches()
        exp_config._SYNTH_CACHE[("players", "smoke", "full")] = [forged]
        try:
            text, clean = validate_corpora()
            assert not clean
            assert "FAIL" in text
        finally:
            exp_config.clear_caches()
