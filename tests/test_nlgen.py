"""Unit tests for the NL-Generator stack (grammar, corpus, model)."""

import random

import pytest

from repro.nlgen import (
    NLGenerator,
    NLGeneratorConfig,
    RealizationGrammar,
    build_parallel_corpus,
    train_nl_generator,
)
from repro.nlgen.grammar import SKELETONS, fill_skeleton
from repro.nlgen.model import _abstract
from repro.programs.base import ProgramKind
from repro.sampling import ProgramSampler
from repro.sampling.sampler import sample_many
from repro.templates import finqa_pool, logic2text_pool, squall_pool


@pytest.fixture
def sql_samples(players_table, rng):
    sampler = ProgramSampler(rng)
    return sample_many(sampler, list(squall_pool()), players_table, 12, rng)


class TestGrammar:
    def test_every_pool_template_has_skeletons(self):
        """Every built-in template must be realizable without fallback."""
        for pool in (squall_pool(), logic2text_pool(), finqa_pool()):
            for template in pool:
                assert template.pattern in SKELETONS, template.pattern
                assert len(SKELETONS[template.pattern]) >= 1

    def test_skeleton_slots_match_placeholders(self):
        import re

        for pool in (squall_pool(), logic2text_pool(), finqa_pool()):
            for template in pool:
                names = {p.name for p in template.placeholders}
                for skeleton in SKELETONS[template.pattern]:
                    used = set(re.findall(r"\{(\w+)\}", skeleton))
                    assert used <= names, (template.pattern, skeleton)

    def test_realize_fills_all_slots(self, sql_samples, rng):
        grammar = RealizationGrammar()
        for sample in sql_samples:
            text = grammar.realize(sample, rng)
            assert "{" not in text and "}" not in text
            assert len(text) > 8

    def test_fallback_for_unknown_pattern(self, sql_samples):
        grammar = RealizationGrammar(skeletons={})
        for sample in sql_samples:
            text = grammar.fallback(sample)
            assert text.endswith("?")

    def test_fill_skeleton_error_on_unbound(self):
        from repro.errors import GenerationError

        with pytest.raises(GenerationError):
            fill_skeleton("what is {missing} ?", {})

    def test_logic_fallback_verbalizes(self, players_table, rng):
        from repro.programs.base import parse_program
        from repro.sampling.sampler import SampledProgram
        from repro.templates import logic2text_pool

        program = parse_program(
            "most_greater { all_rows ; points ; 15 }", "logic"
        )
        sample = SampledProgram(
            template=logic2text_pool().templates[0],
            program=program,
            bindings={},
            result=program.execute(players_table),
            table=players_table,
        )
        grammar = RealizationGrammar(skeletons={})
        text = grammar.fallback(sample)
        assert "points" in text
        assert "15" in text


class TestCorpus:
    def test_pairs_are_aligned(self, players_table, rng):
        pairs = build_parallel_corpus(
            ProgramKind.SQL, [players_table], rng, pairs_per_table=6
        )
        assert len(pairs) > 0
        for pair in pairs:
            assert pair.kind is ProgramKind.SQL
            assert pair.program_source
            assert pair.nl
            assert pair.bindings


class TestAbstraction:
    def test_abstract_replaces_surfaces(self):
        skeleton = _abstract(
            "the points of john smith is 31",
            {"val1": "john smith", "val2": "31", "c2": "points"},
        )
        assert "{val1}" in skeleton
        assert "{val2}" in skeleton
        assert "{c2}" in skeleton

    def test_abstract_longest_first(self):
        """'31' inside 'john 31 smith' must not break longer surfaces."""
        skeleton = _abstract(
            "player 31 scored 31", {"a": "player 31", "b": "31"}
        )
        assert skeleton.startswith("{a}")

    def test_missing_surface_stays(self):
        skeleton = _abstract("nothing matches", {"val1": "zebra"})
        assert skeleton == "nothing matches"


class TestModel:
    def test_train_and_generate(self, players_table, rng):
        pairs = build_parallel_corpus(
            ProgramKind.SQL, [players_table], rng, pairs_per_table=8
        )
        generator = NLGenerator().train(pairs)
        assert generator.n_patterns > 0
        assert generator.n_skeletons > 0
        sampler = ProgramSampler(rng)
        samples = sample_many(
            sampler, list(squall_pool()), players_table, 8, rng
        )
        for sample in samples:
            text = generator.generate(sample, rng)
            assert isinstance(text, str) and len(text) > 5
            assert "{" not in text

    def test_untrained_model_falls_back_to_grammar(self, sql_samples, rng):
        generator = NLGenerator()
        for sample in sql_samples[:3]:
            assert len(generator.generate(sample, rng)) > 5

    def test_noise_channel_changes_some_outputs(self, players_table):
        rng = random.Random(0)
        pairs = build_parallel_corpus(
            ProgramKind.SQL, [players_table], rng, pairs_per_table=8
        )
        clean = NLGenerator(NLGeneratorConfig(noise_rate=0.0)).train(pairs)
        noisy = NLGenerator(NLGeneratorConfig(noise_rate=1.0)).train(pairs)
        sampler = ProgramSampler(random.Random(3))
        samples = sample_many(
            sampler, list(squall_pool()), players_table, 20, random.Random(3)
        )
        differences = 0
        for sample in samples:
            a = clean.generate(sample, random.Random(5))
            b = noisy.generate(sample, random.Random(5))
            if a != b:
                differences += 1
        assert differences > 0

    def test_train_per_kind(self, players_table, finance_table, rng):
        pairs = {
            ProgramKind.SQL: build_parallel_corpus(
                ProgramKind.SQL, [players_table], rng
            ),
            ProgramKind.ARITH: build_parallel_corpus(
                ProgramKind.ARITH, [finance_table], rng
            ),
        }
        generators = train_nl_generator(pairs)
        assert set(generators) == {ProgramKind.SQL, ProgramKind.ARITH}
