"""Tests for the diversity statistics module."""

from repro.eval.diversity import diversity_report
from repro.pipelines.samples import ReasoningSample, TaskType


def _sample(context, sentence, category, cells=frozenset()):
    return ReasoningSample(
        uid=f"d-{abs(hash((sentence, category))) % 10**6}",
        task=TaskType.QUESTION_ANSWERING,
        context=context,
        sentence=sentence,
        answer=("x",),
        evidence_cells=cells,
        provenance={"category": category, "pattern": f"pattern-{category}"},
    )


class TestDiversityReport:
    def test_empty_corpus(self):
        report = diversity_report([])
        assert report.n_samples == 0
        assert report.n_categories == 0

    def test_single_category_entropy_zero(self, players_context):
        samples = [
            _sample(players_context, f"question {i} ?", "lookup")
            for i in range(5)
        ]
        report = diversity_report(samples)
        assert report.n_categories == 1
        assert report.category_entropy == 0.0

    def test_uniform_two_categories_one_bit(self, players_context):
        samples = [
            _sample(players_context, f"q{i} alpha ?", "lookup")
            for i in range(4)
        ] + [
            _sample(players_context, f"q{i} beta ?", "count")
            for i in range(4)
        ]
        report = diversity_report(samples)
        assert abs(report.category_entropy - 1.0) < 1e-9

    def test_distinct_ratios_bounded(self, players_context):
        samples = [
            _sample(players_context, "same words repeated here ?", "lookup")
            for _ in range(10)
        ]
        report = diversity_report(samples)
        assert 0.0 < report.distinct_1 <= 1.0
        assert 0.0 < report.distinct_2 <= 1.0

    def test_evidence_depth(self, players_context):
        shallow = [_sample(players_context, "a ?", "lookup",
                           frozenset({(0, "points")}))]
        deep = [_sample(players_context, "b ?", "aggregation",
                        frozenset({(0, "points"), (1, "points"),
                                   (2, "points")}))]
        assert (
            diversity_report(deep).mean_evidence_cells
            > diversity_report(shallow).mean_evidence_cells
        )

    def test_pattern_count(self, players_context):
        samples = [
            _sample(players_context, f"q{i} ?", category)
            for i, category in enumerate(["lookup", "count", "majority"])
        ]
        assert diversity_report(samples).n_patterns == 3
