"""Tests for training-plan staging, evaluation, and scale presets."""

import pytest

from repro.experiments.config import PAPER, SMOKE, Scale
from repro.pipelines.samples import ReasoningSample, TaskType
from repro.sampling.labeler import ClaimLabel
from repro.train.loop import (
    TrainingPlan,
    _GOLD_REPLICATION,
    _staged,
    evaluate_qa,
    evaluate_verifier,
)

from .conftest import qa_lookup_samples


def _claims(context, n, prefix="s"):
    return [
        ReasoningSample(
            uid=f"{prefix}-{i}",
            task=TaskType.FACT_VERIFICATION,
            context=context,
            sentence=f"claim {prefix} {i}",
            label=ClaimLabel.SUPPORTED if i % 2 else ClaimLabel.REFUTED,
        )
        for i in range(n)
    ]


class TestStaging:
    def test_supervised_plan_has_no_adaptation(self, players_context):
        gold = _claims(players_context, 10)
        initial, adaptation = _staged(TrainingPlan.supervised(gold))
        assert len(initial) == 10
        assert adaptation == []

    def test_few_shot_small_budget_adapts_sequentially(self, players_context):
        synthetic = _claims(players_context, 50, "syn")
        shots = _claims(players_context, 20, "gold")
        initial, adaptation = _staged(TrainingPlan.few_shot(synthetic, shots))
        assert len(initial) == 50
        assert len(adaptation) == 20

    def test_large_budget_switches_to_mixture(self, players_context):
        synthetic = _claims(players_context, 50, "syn")
        labels = _claims(players_context, 150, "gold")
        initial, adaptation = _staged(TrainingPlan.few_shot(synthetic, labels))
        assert adaptation == []
        assert len(initial) == 50 + 150 * _GOLD_REPLICATION

    def test_augmentation_always_mixes(self, players_context):
        synthetic = _claims(players_context, 40, "syn")
        gold = _claims(players_context, 30, "gold")
        initial, adaptation = _staged(
            TrainingPlan.augmentation(synthetic, gold)
        )
        assert adaptation == []
        assert len(initial) == 40 + 30 * _GOLD_REPLICATION

    def test_mixture_preserves_sample_objects(self, players_context):
        synthetic = _claims(players_context, 5, "syn")
        gold = _claims(players_context, 2, "gold")
        initial, _ = _staged(TrainingPlan.augmentation(synthetic, gold))
        gold_uids = [s.uid for s in initial if s.uid.startswith("gold")]
        assert len(gold_uids) == 2 * _GOLD_REPLICATION


class TestEvaluation:
    def test_empty_qa_eval_is_zeroed(self, tiny_qa_model):
        scores = evaluate_qa(tiny_qa_model, [])
        assert (scores.em, scores.f1, scores.denotation) == (0.0, 0.0, 0.0)

    def test_empty_verifier_eval_is_zeroed(self, tiny_verifier):
        scores = evaluate_verifier(tiny_verifier, [])
        assert (scores.accuracy, scores.f1) == (0.0, 0.0)

    def test_unlabeled_verifier_eval_is_zeroed(
        self, tiny_verifier, players_context
    ):
        unlabeled = [
            ReasoningSample(
                uid="u-0",
                task=TaskType.QUESTION_ANSWERING,
                context=players_context,
                sentence="what is the points of bo chen ?",
                answer=("28",),
            )
        ]
        scores = evaluate_verifier(tiny_verifier, unlabeled)
        assert (scores.accuracy, scores.f1) == (0.0, 0.0)

    def test_batched_eval_matches_per_sample_predict(
        self, tiny_qa_model, serve_context
    ):
        """Regression for the predict_batch contract evaluate_qa relies on.

        evaluate_qa switched from a per-sample predict loop to one
        predict_batch call; that is only a pure optimization if batch
        predictions are *identical* to per-sample ones.
        """
        from repro.eval.metrics import denotation_accuracy, qa_scores

        samples = qa_lookup_samples(serve_context)
        batched = evaluate_qa(tiny_qa_model, samples)
        predictions = [tiny_qa_model.predict(s) for s in samples]
        golds = [list(s.answer) for s in samples]
        em, f1 = qa_scores(predictions, golds)
        assert (batched.em, batched.f1) == (em, f1)
        assert batched.denotation == denotation_accuracy(predictions, golds)
        assert predictions == tiny_qa_model.predict_batch(samples)


class TestScale:
    def test_scaled_applies_factor_with_floor(self):
        scale = Scale(name="x", factor=0.1)
        assert scale.scaled(100) == 10
        assert scale.scaled(10) == 8  # floor kicks in
        assert scale.scaled(10, minimum=2) == 2  # custom floor wins below

    def test_presets(self):
        assert SMOKE.factor < PAPER.factor
        assert SMOKE.fewshot_k < PAPER.fewshot_k
        assert PAPER.scaled(140) == 140

    def test_scale_is_frozen(self):
        with pytest.raises(Exception):
            PAPER.factor = 2.0  # type: ignore[misc]
