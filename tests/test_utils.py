"""Coverage for rng helpers, the error hierarchy, and program dispatch."""

import pytest

from repro import errors
from repro.programs.base import (
    ExecutionResult,
    ProgramKind,
    execute_program,
    parse_program,
)
from repro.rng import (
    DEFAULT_SEED,
    choice,
    make_np_rng,
    make_rng,
    sample_up_to,
    shuffled,
    spawn,
    weighted_choice,
)
from repro.tables.values import Value


class TestRng:
    def test_make_rng_deterministic(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_default_seed(self):
        assert make_rng().random() == make_rng(DEFAULT_SEED).random()

    def test_np_rng(self):
        assert make_np_rng(3).integers(0, 100) == make_np_rng(3).integers(0, 100)

    def test_spawn_streams_are_independent(self):
        parent_a = make_rng(1)
        parent_b = make_rng(1)
        child_x = spawn(parent_a, "x")
        child_y = spawn(parent_b, "y")
        assert child_x.random() != child_y.random()

    def test_spawn_same_stream_reproducible(self):
        a = spawn(make_rng(1), "s").random()
        b = spawn(make_rng(1), "s").random()
        assert a == b

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            choice(make_rng(0), [])

    def test_sample_up_to_caps(self):
        out = sample_up_to(make_rng(0), [1, 2, 3], 10)
        assert sorted(out) == [1, 2, 3]

    def test_shuffled_does_not_mutate(self):
        items = [1, 2, 3, 4, 5]
        shuffled(make_rng(0), items)
        assert items == [1, 2, 3, 4, 5]

    def test_weighted_choice_validation(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0), [1, 2], [1.0])
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0), [], [])

    def test_weighted_choice_respects_weights(self):
        rng = make_rng(0)
        picks = {weighted_choice(rng, ["a", "b"], [1.0, 0.0])
                 for _ in range(20)}
        assert picks == {"a"}


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or obj is errors.ReproError

    def test_column_not_found_lists_available(self):
        error = errors.ColumnNotFoundError("x", ["a", "b"])
        assert "a" in str(error)
        assert error.column == "x"

    def test_parse_error_position(self):
        error = errors.ProgramParseError("bad", position=7)
        assert "position 7" in str(error)


class TestProgramDispatch:
    def test_parse_program_all_kinds(self, players_table):
        sql = parse_program("select count ( * ) from w", "sql")
        logic = parse_program("eq { count { all_rows } ; 5 }", ProgramKind.LOGIC)
        arith = parse_program("add ( 1 , 2 )", "arith")
        assert sql.kind is ProgramKind.SQL
        assert logic.kind is ProgramKind.LOGIC
        assert arith.kind is ProgramKind.ARITH
        assert execute_program(players_table, sql).denotation() == ["5"]
        assert execute_program(players_table, logic).truth is True
        assert execute_program(players_table, arith).denotation() == ["3"]

    def test_parse_program_unknown_kind(self):
        with pytest.raises(ValueError):
            parse_program("x", "prolog")


class TestExecutionResult:
    def test_single_requires_exactly_one(self):
        result = ExecutionResult(values=(Value.number(1), Value.number(2)))
        with pytest.raises(errors.EmptyResultError):
            result.single

    def test_require_non_empty(self):
        empty = ExecutionResult(values=())
        with pytest.raises(errors.EmptyResultError):
            empty.require_non_empty()
        boolean = ExecutionResult(values=(), truth=False)
        assert boolean.require_non_empty() is boolean

    def test_denotation_of_boolean(self):
        assert ExecutionResult(values=(), truth=True).denotation() == ["true"]
        assert ExecutionResult(values=(), truth=False).denotation() == ["false"]
