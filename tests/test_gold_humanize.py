"""Tests for the gold annotator and the human phrasing bank."""

import random
import re

import pytest

from repro.datasets.gold import GoldAnnotator
from repro.datasets.humanize import HUMAN_SKELETONS, realize_human
from repro.nlgen.grammar import SKELETONS
from repro.pipelines.samples import EvidenceType, TaskType
from repro.programs.base import ProgramKind
from repro.sampling import ProgramSampler
from repro.sampling.labeler import ClaimLabel
from repro.sampling.sampler import sample_many
from repro.templates import logic2text_pool, squall_pool


class TestHumanBank:
    def test_covers_every_template(self):
        from repro.templates import finqa_pool

        for pool in (squall_pool(), logic2text_pool(), finqa_pool()):
            for template in pool:
                assert template.pattern in HUMAN_SKELETONS, template.pattern

    def test_slots_match_placeholders(self):
        from repro.templates import finqa_pool

        for pool in (squall_pool(), logic2text_pool(), finqa_pool()):
            for template in pool:
                names = {p.name for p in template.placeholders}
                for skeleton in HUMAN_SKELETONS[template.pattern]:
                    used = set(re.findall(r"\{(\w+)\}", skeleton))
                    assert used <= names, (template.pattern, skeleton)

    def test_human_phrasing_differs_from_grammar(self):
        """The supervised phrasing distribution must not be a copy of
        the synthetic one — otherwise the sup/unsup gap would vanish."""
        overlap = 0
        total = 0
        for pattern, human in HUMAN_SKELETONS.items():
            grammar = set(SKELETONS.get(pattern, []))
            total += len(human)
            overlap += sum(1 for h in human if h in grammar)
        assert overlap / total < 0.1

    def test_realize_human_fills_slots(self, players_table, rng):
        sampler = ProgramSampler(rng)
        for sample in sample_many(
            sampler, list(squall_pool()), players_table, 8, rng
        ):
            text = realize_human(sample, rng)
            assert "{" not in text
            assert len(text) > 8


class TestGoldAnnotator:
    @pytest.fixture
    def qa_annotator(self):
        return GoldAnnotator(
            rng=random.Random(3),
            task=TaskType.QUESTION_ANSWERING,
            program_kinds=(ProgramKind.SQL, ProgramKind.ARITH),
        )

    @pytest.fixture
    def fv_annotator(self):
        return GoldAnnotator(
            rng=random.Random(3),
            task=TaskType.FACT_VERIFICATION,
            program_kinds=(ProgramKind.LOGIC,),
        )

    def test_table_sample_answer_matches_program(self, qa_annotator,
                                                 finance_context):
        produced = 0
        for serial in range(10):
            sample = qa_annotator.table_sample(finance_context, f"g{serial}")
            if sample is None:
                continue
            produced += 1
            assert sample.answer
            assert sample.evidence_type is EvidenceType.TABLE
        assert produced >= 5

    def test_text_sample_reads_text_records(self, qa_annotator,
                                            finance_context):
        sample = qa_annotator.text_sample(finance_context, "t0")
        assert sample is not None
        assert sample.evidence_type is EvidenceType.TEXT
        # the answer must come from a text record, not the table
        record = finance_context.meta["text_records"][0]
        assert sample.answer[0] in record.values()

    def test_text_sample_without_records(self, qa_annotator, players_table):
        from repro.tables import TableContext

        bare = TableContext(table=players_table, uid="bare")
        assert qa_annotator.text_sample(bare, "t0") is None

    def test_joint_sample_spans_modalities(self, qa_annotator,
                                           finance_context):
        found = None
        for serial in range(12):
            sample = qa_annotator.joint_sample(finance_context, f"j{serial}")
            if sample is not None:
                found = sample
                break
        assert found is not None
        assert found.evidence_type is EvidenceType.TABLE_TEXT
        # the emitted context is the ORIGINAL one
        assert found.context.table.n_rows == finance_context.table.n_rows

    def test_unknown_claims(self, fv_annotator, players_context):
        sample = fv_annotator.unknown_claim(
            players_context, "u0", "zz phantom"
        )
        assert sample is not None
        assert sample.label is ClaimLabel.UNKNOWN

    def test_unknown_claim_rejects_present_entities(self, fv_annotator,
                                                    players_context):
        assert fv_annotator.unknown_claim(
            players_context, "u1", "john smith"
        ) is None
        # entity present only in the text is also rejected
        assert fv_annotator.unknown_claim(
            players_context, "u2", "dana cruz"
        ) is None

    def test_verification_text_claims_balanced(self, fv_annotator,
                                               finance_context):
        labels = set()
        for serial in range(20):
            sample = fv_annotator.text_sample(finance_context, f"b{serial}")
            if sample is not None:
                labels.add(sample.label)
        assert ClaimLabel.SUPPORTED in labels
        assert ClaimLabel.REFUTED in labels
