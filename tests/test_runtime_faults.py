"""Fault-injection tests: quarantine, retries, and worker-death recovery.

These tests drive the production runtime through
:mod:`repro.runtime.faults` — the same code paths a real segfault, OOM
kill, or flaky context would take, but deterministic.  The core
invariant throughout: a faulted run's output equals the unfaulted run's
output minus exactly the quarantined contexts, for any worker count.
"""

import json

import pytest

from repro.errors import QuarantinedContextError
from repro.pipelines import UCTR, UCTRConfig
from repro.runtime import RetryPolicy
from repro.runtime.faults import (
    FaultInjectedError,
    FaultPlan,
    FaultSpec,
    active_plan,
    clear,
    inject,
    injected,
    install,
)
from repro.tables import Paragraph, Table, TableContext
from repro.telemetry import build_report, validate_report


def _context(i: int) -> TableContext:
    table = Table.from_rows(
        header=["player", "team", "points"],
        raw_rows=[
            [f"p{i}{j}", f"team{j % 3}", str(10 + 3 * j + i)]
            for j in range(5)
        ],
        title=f"stats {i}",
        row_name_column="player",
    )
    text = f"For newcomer{i} , the team is team9 and the points is {20 + i} ."
    return TableContext(
        table=table, uid=f"ctx{i}", paragraphs=(Paragraph(text=text),)
    )


def _fingerprint(samples):
    return json.dumps([s.to_json() for s in samples], sort_keys=True)


@pytest.fixture(scope="module")
def contexts():
    return [_context(i) for i in range(6)]


@pytest.fixture(scope="module")
def framework(contexts):
    framework = UCTR(
        UCTRConfig(program_kinds=("sql",), samples_per_context=4, seed=7)
    )
    return framework.fit(contexts)


@pytest.fixture(scope="module")
def baseline(framework, contexts):
    return framework.generate(contexts, workers=1)


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    clear()
    yield
    clear()


def _minus(baseline, *indices):
    dropped = tuple(f"ctx{i}-" for i in indices)
    return [s for s in baseline if not s.uid.startswith(dropped)]


class TestFaultPlumbing:
    def test_plan_round_trips_through_environment(self):
        plan = FaultPlan({
            2: FaultSpec(kind="raise", attempts=1),
            5: FaultSpec(kind="slow", seconds=0.5, once_path="/tmp/x"),
        })
        install(plan)
        assert active_plan() == plan
        clear()
        assert active_plan() is None

    def test_injected_context_manager_cleans_up(self):
        with injected(FaultPlan({0: FaultSpec(kind="raise")})):
            assert active_plan() is not None
        assert active_plan() is None

    def test_inject_is_noop_without_plan(self):
        inject(0)  # no plan installed: must not raise

    def test_inject_raises_for_named_index_only(self):
        with injected(FaultPlan({3: FaultSpec(kind="raise")})):
            inject(2)  # not named: clean
            with pytest.raises(FaultInjectedError):
                inject(3)

    def test_attempt_gate(self):
        with injected(FaultPlan({0: FaultSpec(kind="raise", attempts=2)})):
            with pytest.raises(FaultInjectedError):
                inject(0, attempt=1)
            with pytest.raises(FaultInjectedError):
                inject(0, attempt=2)
            inject(0, attempt=3)  # past the gate: clean

    def test_once_path_fires_exactly_once(self, tmp_path):
        sentinel = str(tmp_path / "once")
        spec = FaultSpec(kind="raise", once_path=sentinel)
        with injected(FaultPlan({0: spec})):
            with pytest.raises(FaultInjectedError):
                inject(0)
            inject(0)  # sentinel claimed: every later attempt passes

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="meteor")


class TestQuarantine:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_faulted_output_is_baseline_minus_quarantined(
        self, framework, contexts, baseline, workers
    ):
        plan = FaultPlan({
            1: FaultSpec(kind="raise"),
            4: FaultSpec(kind="raise"),
        })
        with injected(plan):
            samples = framework.generate(
                contexts, workers=workers,
                retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
            )
        telemetry = framework.last_telemetry
        events = telemetry.events("quarantine")
        assert [e["index"] for e in events] == [1, 4]
        assert {e["error"] for e in events} == {"FaultInjectedError"}
        assert {e["uid"] for e in events} == {"ctx1", "ctx4"}
        assert _fingerprint(samples) == _fingerprint(_minus(baseline, 1, 4))

    def test_transient_fault_retried_to_full_output(
        self, framework, contexts, baseline
    ):
        plan = FaultPlan({2: FaultSpec(kind="raise", attempts=1)})
        with injected(plan):
            samples = framework.generate(
                contexts, workers=1,
                retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            )
        telemetry = framework.last_telemetry
        assert _fingerprint(samples) == _fingerprint(baseline)
        assert not telemetry.events("quarantine")
        assert telemetry.count(
            "retries", "context/FaultInjectedError"
        ) == 1

    def test_retry_does_not_double_count_attempts(
        self, framework, contexts
    ):
        """Only the successful attempt's counters merge (satellite c)."""
        plan = FaultPlan({2: FaultSpec(kind="raise", attempts=1)})
        with injected(plan):
            framework.generate(
                contexts, workers=1,
                retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            )
        telemetry = framework.last_telemetry
        for pipeline in telemetry.pipelines():
            if pipeline in ("parallel", "runtime"):
                continue
            assert telemetry.reconciles(pipeline), pipeline

    def test_quarantine_record_shape(self, framework, contexts):
        with injected(FaultPlan({0: FaultSpec(kind="raise")})):
            framework.generate(
                contexts, workers=1,
                retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
            )
        (event,) = framework.last_telemetry.events("quarantine")
        assert event["reason"] == "exception"
        assert event["attempts"] == 2
        assert event["stage"] == "serial"
        assert event["digest"]  # traceback digest present for grouping

    def test_strict_quarantine_raises(self, framework, contexts):
        with injected(FaultPlan({3: FaultSpec(kind="raise")})):
            with pytest.raises(QuarantinedContextError) as exc:
                framework.generate(
                    contexts, workers=1,
                    retry=RetryPolicy(max_attempts=1, backoff_base=0.0),
                    strict_quarantine=True,
                )
        assert exc.value.index == 3
        assert exc.value.uid == "ctx3"


class TestWorkerDeath:
    def test_killed_worker_once_recovers_full_output(
        self, framework, contexts, baseline, tmp_path
    ):
        sentinel = str(tmp_path / "kill-once")
        plan = FaultPlan({3: FaultSpec(kind="kill", once_path=sentinel)})
        with injected(plan):
            samples = framework.generate(
                contexts, workers=2,
                retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            )
        telemetry = framework.last_telemetry
        assert _fingerprint(samples) == _fingerprint(baseline)
        assert not telemetry.events("quarantine")
        # the pool broke once: the blocked-on chunk was suspected and
        # probed clean, the bystanders requeued uncharged.
        assert telemetry.count("retries", "suspect/worker_death") >= 1

    def test_poisoned_context_quarantined_as_worker_death(
        self, framework, contexts, baseline
    ):
        plan = FaultPlan({3: FaultSpec(kind="kill")})
        with injected(plan):
            samples = framework.generate(
                contexts, workers=2,
                retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
            )
        telemetry = framework.last_telemetry
        events = telemetry.events("quarantine")
        assert [(e["index"], e["reason"]) for e in events] == [
            (3, "worker_death")
        ]
        assert events[0]["stage"] == "parent"
        assert _fingerprint(samples) == _fingerprint(_minus(baseline, 3))

    def test_slow_context_quarantined_on_deadline(
        self, framework, contexts, baseline
    ):
        plan = FaultPlan({4: FaultSpec(kind="slow", seconds=30.0)})
        with injected(plan):
            samples = framework.generate(
                contexts, workers=2,
                retry=RetryPolicy(
                    max_attempts=2, backoff_base=0.0, deadline=0.7
                ),
            )
        telemetry = framework.last_telemetry
        events = telemetry.events("quarantine")
        assert [(e["index"], e["reason"]) for e in events] == [
            (4, "timeout")
        ]
        assert _fingerprint(samples) == _fingerprint(_minus(baseline, 4))


class TestFaultedRunReport:
    def test_report_carries_quarantine_and_validates(
        self, framework, contexts
    ):
        with injected(FaultPlan({1: FaultSpec(kind="raise")})):
            samples = framework.generate(
                contexts, workers=1,
                retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
            )
        report = build_report(
            framework.last_telemetry,
            seed=7,
            workers=1,
            contexts=len(contexts),
            samples_written=len(samples),
        )
        assert validate_report(report) == []
        assert report["quarantine"]["count"] == 1
        (entry,) = report["quarantine"]["contexts"]
        assert entry["index"] == 1 and entry["uid"] == "ctx1"
        assert report["retries"].get("context/FaultInjectedError") == 1
