"""Tests for the model registry: versioning, defaults, integrity."""

import json

import pytest

from repro.errors import IntegrityError, RegistryError
from repro.serve import (
    ModelRegistry,
    load_model,
    model_task,
    save_model,
    schema_fingerprint,
)

from .conftest import qa_lookup_samples, verification_samples


class TestRoundTrip:
    def test_qa_predictions_survive_save_load(
        self, tmp_path, tiny_qa_model, serve_context
    ):
        save_model(tmp_path, "qa", tiny_qa_model)
        loaded = load_model(tmp_path, "qa")
        samples = qa_lookup_samples(serve_context)
        assert [loaded.model.predict(s) for s in samples] == [
            tiny_qa_model.predict(s) for s in samples
        ]

    def test_verifier_predictions_survive_save_load(
        self, tmp_path, tiny_verifier, serve_context
    ):
        save_model(tmp_path, "verifier", tiny_verifier)
        loaded = load_model(tmp_path, "verifier")
        samples = verification_samples(serve_context)
        assert loaded.model.predict(samples) == tiny_verifier.predict(samples)

    def test_record_carries_metadata(self, tmp_path, tiny_qa_model):
        record = save_model(
            tmp_path, "qa", tiny_qa_model,
            metrics={"em": 0.75}, train_corpus={"records": 20},
        )
        assert record.model_id == "qa@v0001"
        assert record.task == "qa"
        assert record.model_class == "TagOpQA"
        assert record.metrics == {"em": 0.75}
        assert record.train_corpus == {"records": 20}
        assert record.schema_fingerprint == schema_fingerprint(tiny_qa_model)
        assert record.artifact_bytes > 0
        # to_json must be JSON-serializable as-is (CLI, reports)
        json.dumps(record.to_json())

    def test_replica_is_independent(self, tmp_path, tiny_verifier, serve_context):
        save_model(tmp_path, "verifier", tiny_verifier)
        loaded = load_model(tmp_path)
        replica = loaded.replica()
        assert replica is not loaded.model
        samples = verification_samples(serve_context)[:4]
        assert replica.predict(samples) == loaded.model.predict(samples)


class TestVersioning:
    def test_versions_increment_and_default_follows(
        self, tmp_path, tiny_qa_model
    ):
        registry = ModelRegistry(tmp_path)
        first = registry.save(tiny_qa_model, "qa")
        second = registry.save(tiny_qa_model, "qa")
        assert (first.version, second.version) == ("v0001", "v0002")
        assert registry.versions("qa") == ["v0001", "v0002"]
        assert registry.default_version("qa") == "v0002"
        assert registry.load("qa").record.version == "v0002"
        assert registry.load("qa", "v0001").record.version == "v0001"

    def test_save_non_default_keeps_pointer(self, tmp_path, tiny_qa_model):
        registry = ModelRegistry(tmp_path)
        registry.save(tiny_qa_model, "qa")
        registry.save(tiny_qa_model, "qa", default=False)
        assert registry.default_version("qa") == "v0001"

    def test_first_save_becomes_registry_default(
        self, tmp_path, tiny_qa_model, tiny_verifier
    ):
        registry = ModelRegistry(tmp_path)
        registry.save(tiny_qa_model, "qa")
        registry.save(tiny_verifier, "verifier")
        assert registry.default_model() == "qa"
        assert registry.load().record.name == "qa"

    def test_set_default_switches_models(
        self, tmp_path, tiny_qa_model, tiny_verifier
    ):
        registry = ModelRegistry(tmp_path)
        registry.save(tiny_qa_model, "qa")
        registry.save(tiny_verifier, "verifier")
        registry.set_default("verifier")
        assert registry.load().record.name == "verifier"
        with pytest.raises(RegistryError):
            registry.set_default("nope")
        with pytest.raises(RegistryError):
            registry.set_default("qa", "v9999")

    def test_list_records_covers_every_version(
        self, tmp_path, tiny_qa_model, tiny_verifier
    ):
        registry = ModelRegistry(tmp_path)
        registry.save(tiny_qa_model, "qa")
        registry.save(tiny_qa_model, "qa")
        registry.save(tiny_verifier, "verifier")
        ids = [record.model_id for record in registry.list_records()]
        assert ids == ["qa@v0001", "qa@v0002", "verifier@v0001"]

    def test_unknown_names_and_versions(self, tmp_path, tiny_qa_model):
        registry = ModelRegistry(tmp_path)
        with pytest.raises(RegistryError):
            registry.load("ghost")
        registry.save(tiny_qa_model, "qa")
        with pytest.raises(RegistryError):
            registry.load("qa", "v0042")
        with pytest.raises(RegistryError):
            registry.save(tiny_qa_model, "../escape")


class TestIntegrity:
    def test_flipped_byte_is_refused(self, tmp_path, tiny_qa_model):
        record = save_model(tmp_path, "qa", tiny_qa_model)
        artifact = record.path
        blob = bytearray(open(artifact, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        with open(artifact, "wb") as handle:
            handle.write(blob)
        with pytest.raises(IntegrityError):
            load_model(tmp_path, "qa")

    def test_missing_manifest_is_refused(self, tmp_path, tiny_qa_model):
        record = save_model(tmp_path, "qa", tiny_qa_model)
        (ModelRegistry(tmp_path).root / "qa" / record.version
         / "model.pkl.manifest.json").unlink()
        with pytest.raises(IntegrityError):
            load_model(tmp_path, "qa")

    def test_swapped_payload_is_refused(
        self, tmp_path, tiny_qa_model, tiny_verifier
    ):
        """A verifier pickle under a QA manifest must not serve."""
        import shutil

        qa_record = save_model(tmp_path, "qa", tiny_qa_model)
        verifier_record = save_model(tmp_path, "verifier", tiny_verifier)
        shutil.copyfile(verifier_record.path, qa_record.path)
        with pytest.raises(IntegrityError):
            load_model(tmp_path, "qa")

    def test_model_task_rejects_unknown_objects(self):
        with pytest.raises(RegistryError):
            model_task(object())

    def test_fingerprints_differ_across_families(
        self, tiny_qa_model, tiny_verifier
    ):
        assert schema_fingerprint(tiny_qa_model) != schema_fingerprint(
            tiny_verifier
        )
