"""Tests for the retry policy: backoff, deterministic jitter, deadline."""

import pytest

from repro.runtime.retry import (
    RetryPolicy,
    deterministic_jitter,
    run_with_retry,
)


class TestRetryPolicy:
    def test_delay_is_exponential(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=100.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)

    def test_delay_respects_cap(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_cap=2.5)
        assert policy.delay(10) == pytest.approx(2.5)

    def test_delay_applies_jitter_factor(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_cap=10.0)
        assert policy.delay(2, jitter=0.5) == pytest.approx(1.0)

    def test_chunk_deadline_scales_with_size(self):
        policy = RetryPolicy(deadline=2.0)
        assert policy.chunk_deadline(3) == pytest.approx(6.0)
        assert policy.chunk_deadline(0) == pytest.approx(2.0)
        assert RetryPolicy(deadline=None).chunk_deadline(5) is None

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-0.1)

    def test_policy_is_hashable_and_frozen(self):
        policy = RetryPolicy()
        hash(policy)
        with pytest.raises(Exception):
            policy.max_attempts = 5


class TestDeterministicJitter:
    def test_stable_for_same_name(self):
        a = deterministic_jitter("key", "context/3", 1)
        b = deterministic_jitter("key", "context/3", 1)
        assert a == b

    def test_in_half_open_unit_upper_half(self):
        for attempt in range(1, 20):
            factor = deterministic_jitter("key", "chunk/0", attempt)
            assert 0.5 <= factor < 1.0

    def test_streams_decorrelate(self):
        factors = {
            deterministic_jitter("key", f"context/{i}", 1) for i in range(8)
        }
        assert len(factors) > 1


class TestRunWithRetry:
    def _flaky(self, failures):
        calls = []

        def fn(attempt):
            calls.append(attempt)
            if len(calls) <= failures:
                raise ValueError(f"boom {attempt}")
            return f"ok@{attempt}"

        return fn, calls

    def test_succeeds_after_transient_failures(self):
        fn, calls = self._flaky(failures=2)
        policy = RetryPolicy(max_attempts=3, backoff_base=0.0)
        assert run_with_retry(fn, policy) == "ok@3"
        # fn receives the 1-based attempt number each time
        assert calls == [1, 2, 3]

    def test_reraises_when_attempts_exhausted(self):
        fn, calls = self._flaky(failures=10)
        policy = RetryPolicy(max_attempts=3, backoff_base=0.0)
        with pytest.raises(ValueError, match="boom 3"):
            run_with_retry(fn, policy)
        assert calls == [1, 2, 3]

    def test_deadline_stops_retries_early(self):
        fn, calls = self._flaky(failures=10)
        clock = iter([0.0, 100.0]).__next__  # started, then first check
        policy = RetryPolicy(max_attempts=5, backoff_base=0.0, deadline=1.0)
        with pytest.raises(ValueError, match="boom 1"):
            run_with_retry(fn, policy, clock=clock)
        assert calls == [1]

    def test_never_sleeps_past_deadline(self):
        # Regression: the backoff pause used to ignore the deadline, so
        # a 10s pause could be slept inside a 1s budget and the next
        # attempt launched long after expiry.
        fn, calls = self._flaky(failures=10)
        now = [0.0]
        slept = []

        def sleep(seconds):
            slept.append(seconds)
            now[0] += seconds

        policy = RetryPolicy(
            max_attempts=5, backoff_base=10.0, backoff_cap=10.0, deadline=1.0
        )
        with pytest.raises(ValueError, match="boom 1"):
            run_with_retry(fn, policy, sleep=sleep, clock=lambda: now[0])
        assert slept == []  # gave up instead of sleeping 10s into a 1s budget
        assert calls == [1]
        assert now[0] <= policy.deadline

    def test_gives_up_when_pause_would_exhaust_budget(self):
        fn, calls = self._flaky(failures=10)
        now = [0.0]

        def fn_with_time(attempt):
            now[0] += 0.4  # each attempt takes 0.4s of the 1.0s budget
            return fn(attempt)

        def sleep(seconds):
            now[0] += seconds

        policy = RetryPolicy(
            max_attempts=5, backoff_base=0.3, backoff_cap=0.3, deadline=1.0
        )
        with pytest.raises(ValueError):
            run_with_retry(fn_with_time, policy, sleep=sleep,
                           clock=lambda: now[0])
        # attempt 1 (t=0.4) + pause 0.3 fits; attempt 2 ends at t=1.1,
        # past the deadline, so no third attempt is launched.
        assert calls == [1, 2]
        assert now[0] == pytest.approx(1.1)

    def test_retries_freely_inside_generous_deadline(self):
        fn, calls = self._flaky(failures=2)
        now = [0.0]

        def sleep(seconds):
            now[0] += seconds

        policy = RetryPolicy(
            max_attempts=5, backoff_base=0.1, backoff_cap=1.0, deadline=60.0
        )
        assert (
            run_with_retry(fn, policy, sleep=sleep, clock=lambda: now[0])
            == "ok@3"
        )
        assert calls == [1, 2, 3]

    def test_sleeps_policy_delays(self):
        fn, _ = self._flaky(failures=2)
        pauses = []
        policy = RetryPolicy(max_attempts=3, backoff_base=0.1,
                             backoff_cap=10.0)
        run_with_retry(fn, policy, sleep=pauses.append)
        assert pauses == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_jittered_sleeps_are_deterministic(self):
        def pauses_for_run():
            fn, _ = self._flaky(failures=2)
            pauses = []
            run_with_retry(
                fn,
                RetryPolicy(max_attempts=3, backoff_base=0.1),
                jitter_key="run-key",
                stream="context/4",
                sleep=pauses.append,
            )
            return pauses

        first, second = pauses_for_run(), pauses_for_run()
        assert first == second
        # jitter scales the raw delay into [0.5, 1.0) of its value
        assert 0.05 <= first[0] < 0.1

    def test_keyboard_interrupt_propagates_unretried(self):
        calls = []

        def fn(attempt):
            calls.append(attempt)
            raise KeyboardInterrupt()

        with pytest.raises(KeyboardInterrupt):
            run_with_retry(fn, RetryPolicy(max_attempts=5, backoff_base=0.0))
        assert calls == [1]

    def test_on_retry_sees_each_failure(self):
        fn, _ = self._flaky(failures=2)
        seen = []
        run_with_retry(
            fn,
            RetryPolicy(max_attempts=3, backoff_base=0.0),
            on_retry=lambda attempt, error: seen.append(
                (attempt, type(error).__name__)
            ),
        )
        assert seen == [(1, "ValueError"), (2, "ValueError")]
