"""End-to-end table-store smoke check (run by the CI ``store-smoke`` job).

Builds a small synthetic corpus with the real CLI (``repro store add``
/ ``build`` / ``verify``), spawns ``repro serve --store`` as a real
subprocess against a registry directory, then proves the behaviors the
store + ask path promises:

1. ``POST /v1/ask`` answers question-only requests over the wire,
   echoing retrieval provenance, and retrieval recall@5 over known
   gold tables meets the benchmark gate (>= 0.9).
2. A vocabulary-disjoint question is a typed ``retrieval_miss`` —
   HTTP 200 with ``ok: false``, never a 5xx.
3. A mixed ``ask_fraction`` loadgen workload completes with zero
   failures, and ``GET /metrics`` reconciles on both layers: the
   engine's ``accepted == completed + rejected + in_flight`` and the
   ask section's ``requests == answered + retrieval_miss``.
4. ``/v1/qa`` and ``/v1/ask`` share one validation path: the same
   malformed fields draw the same 400s naming the same field.
5. SIGTERM drains cleanly (exit 0, reconciling final stats).

Usage::

    PYTHONPATH=src python scripts/store_smoke.py REGISTRY_DIR STORE_DIR \\
        [--corpus N] [--seed S]

Exits non-zero (assertion) on any violation.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

from repro.serve import HttpServeClient, build_workload, run_load
from repro.serve.registry import TASK_QA
from repro.store import TableStore, gold_questions

RECALL5_GATE = 0.9


def _cli(*args: str) -> None:
    subprocess.run(
        [sys.executable, "-m", "repro.cli", *args], check=True
    )


def _post_error(base: str, path: str, payload: dict) -> tuple[int, dict]:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30.0):
            raise AssertionError(f"expected an error from {path}")
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("registry_dir")
    parser.add_argument("store_dir")
    parser.add_argument("--corpus", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    # 0. Build and audit the corpus with the real CLI surface.
    _cli("store", "add", "--store", args.store_dir,
         "--synth", str(args.corpus), "--seed", str(args.seed))
    _cli("store", "build", "--store", args.store_dir, "--workers", "2")
    _cli("store", "verify", "--store", args.store_dir)

    env = dict(os.environ)
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--registry", args.registry_dir, "--store", args.store_dir,
            "--port", "0", "--workers", "1", "--max-batch", "8",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    port = None
    lines: list[str] = []
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        lines.append(line)
        print("serve:", line, end="")
        if line.startswith("serving on http://"):
            port = int(line.split(":")[2].split()[0])
            break
    assert port is not None, "server never came up:\n" + "".join(lines)

    try:
        base = f"http://127.0.0.1:{port}"
        client = HttpServeClient(base)
        health = client.healthz()
        assert health["status"] == "ok", health
        assert health["store"] == {"docs": args.corpus}, health

        # 1. Recall over gold questions, through the full ask path.
        gold = gold_questions(
            60, corpus_size=args.corpus, seed=args.seed
        )
        hits_at_5 = answered = 0
        for question in gold:
            response = client.ask(question.question, k=5)
            answered += bool(response.ok)
            uids = [hit["uid"] for hit in response.retrieval["hits"]]
            hits_at_5 += question.uid in uids
            assert response.retrieval["chosen"], response.retrieval
        recall5 = hits_at_5 / len(gold)
        print(f"recall@5 over the wire: {recall5:.3f} "
              f"({answered}/{len(gold)} answered)")
        assert recall5 >= RECALL5_GATE, (
            f"recall@5 {recall5:.3f} below the {RECALL5_GATE} gate"
        )
        assert answered == len(gold)

        # 2. A vocabulary-disjoint question is a typed miss, not a 5xx.
        miss = client.ask("xylophone zebra quartz umbrella")
        assert not miss.ok and miss.error.startswith("retrieval_miss"), miss

        # 3. Mixed workload: half the QA items converted to ask items.
        contexts = [
            TableStore.open(args.store_dir).get(f"t{i:08d}")
            for i in range(8)
        ]
        workload = build_workload(
            contexts, 80, tasks=(TASK_QA,), seed=5, ask_fraction=0.5
        )
        n_ask = sum(item.task == "ask" for item in workload)
        assert 0 < n_ask < len(workload), n_ask
        report = run_load(client, workload, clients=4)
        print("load:", json.dumps(report.to_json()))
        assert report.completed == report.sent, report
        assert not any(report.failures.values()), report

        metrics = client.metrics()
        assert metrics["reconciles"], metrics
        assert metrics["accepted"] == (
            metrics["completed"] + metrics["rejected"]
            + metrics["in_flight"]
        ), metrics
        ask = metrics["ask"]
        assert ask["requests"] == (
            ask["answered"] + ask["retrieval_miss"]
        ), ask
        assert ask["answered"] >= len(gold) + n_ask, ask
        assert ask["retrieval_miss"] >= 1, ask
        print("ask metrics:", json.dumps(ask))

        # 4. Shared validation path: same 400, same field, both routes.
        code, payload = _post_error(base, "/v1/ask", {
            "question": "q ?", "context": {"table": {}},
        })
        assert code == 400 and payload["error"]["field"] == "context", payload
        code, payload = _post_error(base, "/v1/ask", {
            "question": "q ?", "top_k": 0,
        })
        assert code == 400 and payload["error"]["field"] == "top_k", payload
        for path in ("/v1/ask", "/v1/qa"):
            code, payload = _post_error(base, path, {
                "question": "q ?", "sanitize": "yes",
            })
            assert code == 400, (path, payload)
            assert payload["error"]["field"] == "sanitize", (path, payload)

        # 5. Clean drain on SIGTERM.
        process.send_signal(signal.SIGTERM)
        output = process.communicate(timeout=120)[0]
    finally:
        if process.poll() is None:
            process.kill()

    print(output)
    assert process.returncode == 0, f"exit {process.returncode}"
    marker = "final stats: "
    stats_line = next(
        line for line in output.splitlines() if marker in line)
    stats = json.loads(stats_line.split(marker, 1)[1])
    assert stats["reconciles"], stats
    print(f"store smoke OK: recall@5 {recall5:.3f} over {args.corpus} "
          "tables, metrics reconciled, drain clean")


if __name__ == "__main__":
    main()
