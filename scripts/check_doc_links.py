#!/usr/bin/env python
"""Fail on dead relative links in the repo's Markdown files.

Scans every tracked ``*.md`` for inline links and images, resolves
relative targets against the linking file (or the repo root for
``/``-prefixed targets, GitHub-style), and checks that the target file
exists.  For ``file#anchor`` and in-page ``#anchor`` links into
Markdown files, the anchor must match a heading's GitHub-style slug
(lowercase, punctuation dropped, spaces to hyphens, ``-N`` suffixes
for duplicates).

External schemes (``http(s)://``, ``mailto:``) are ignored; fenced
code blocks and inline code spans are stripped before scanning so
example snippets cannot produce false positives.

Exit status: 0 when every relative link resolves, 1 otherwise (each
dead link is listed as ``file:line: target — reason``).  CI runs this
as the ``docs-links`` job.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` / ``![alt](target)`` — target ends at whitespace
#: (an optional ``"title"``) or the closing parenthesis.
_LINK = re.compile(r"!?\[[^\]]*\]\(\s*([^)\s]+)(?:\s+\"[^\"]*\")?\s*\)")
_FENCE = re.compile(r"^(```|~~~)")
_HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
_INLINE_CODE = re.compile(r"`[^`]*`")
_EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")  # http:, mailto:, …


def _strip_fences(lines: list[str]) -> list[str]:
    """Blank out fenced code blocks, preserving line numbers."""
    out: list[str] = []
    in_fence = False
    for line in lines:
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            out.append("")
            continue
        out.append("" if in_fence else line)
    return out


def _slugify(heading: str) -> str:
    """GitHub's anchor slug for a heading's rendered text."""
    text = _INLINE_CODE.sub(lambda m: m.group(0).strip("`"), heading)
    text = text.replace("`", "").replace("*", "")
    # drop link syntax, keep the link text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.lower()
    text = re.sub(r"[^a-z0-9 _-]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set[str]:
    """Every heading slug in ``path``, with ``-N`` duplicate suffixes."""
    lines = _strip_fences(path.read_text(encoding="utf-8").splitlines())
    seen: dict[str, int] = {}
    slugs: set[str] = set()
    for line in lines:
        match = _HEADING.match(line)
        if not match:
            continue
        slug = _slugify(match.group(1))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        slugs.add(slug if count == 0 else f"{slug}-{count}")
    return slugs


def _markdown_files() -> list[Path]:
    return sorted(
        path
        for path in REPO_ROOT.rglob("*.md")
        if not any(part.startswith(".") for part in path.parts[:-1])
    )


def check() -> list[str]:
    problems: list[str] = []
    anchor_cache: dict[Path, set[str]] = {}

    def anchors_of(path: Path) -> set[str]:
        if path not in anchor_cache:
            anchor_cache[path] = _anchors(path)
        return anchor_cache[path]

    for md_file in _markdown_files():
        lines = _strip_fences(
            md_file.read_text(encoding="utf-8").splitlines()
        )
        rel_name = md_file.relative_to(REPO_ROOT)
        for line_no, line in enumerate(lines, start=1):
            scannable = _INLINE_CODE.sub("", line)
            for match in _LINK.finditer(scannable):
                target = match.group(1)
                if _EXTERNAL.match(target):
                    continue
                path_part, _, anchor = target.partition("#")
                if path_part:
                    if path_part.startswith("/"):
                        resolved = REPO_ROOT / path_part.lstrip("/")
                    else:
                        resolved = md_file.parent / path_part
                    resolved = resolved.resolve()
                    if not resolved.exists():
                        problems.append(
                            f"{rel_name}:{line_no}: {target} — file not found"
                        )
                        continue
                else:
                    resolved = md_file
                if anchor and resolved.suffix == ".md":
                    if anchor.lower() not in anchors_of(resolved):
                        problems.append(
                            f"{rel_name}:{line_no}: {target} — no such "
                            f"anchor in {resolved.relative_to(REPO_ROOT)}"
                        )
    return problems


def main() -> int:
    problems = check()
    files = len(_markdown_files())
    if problems:
        print(f"dead links in {files} scanned Markdown file(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"docs links ok ({files} Markdown file(s) scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
