"""End-to-end serving smoke check (run by the CI ``serve-smoke`` job).

Spawns ``repro serve`` as a real subprocess against a registry
directory, then proves the behaviors the serving stack promises:

1. QA and verification both answer over the wire from registry
   artifacts (``POST /v1/qa`` / ``POST /v1/verify``).
2. An overload burst (16 closed-loop clients against ``queue_limit=2``)
   is rejected with typed 429s — never hangs, never transport errors.
3. ``GET /metrics`` reconciles exactly:
   ``accepted == completed + rejected + in_flight``.
4. With ``--reload``: a new model version registered mid-load and
   ``POST /v1/admin/reload`` flips serving to it with zero failed
   (non-429) requests, a still-reconciling ``/metrics``, and
   ``GET /healthz`` answering 200 for the whole cycle.
5. SIGTERM in the middle of a load burst drains in-flight work and
   exits 0, printing final stats that still reconcile.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py REGISTRY_DIR \\
        CONTEXTS_JSONL [--replicas N] [--reload]

``--replicas N`` runs the server through the multi-process replica
pool instead of the in-process engine.  Exits non-zero (assertion) on
any violation.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import threading
import time

from repro.io import load_contexts
from repro.serve import (
    HttpServeClient,
    ModelRegistry,
    build_workload,
    run_load,
)


def _reload_cycle(
    client: HttpServeClient, registry_dir: str, contexts
) -> None:
    """Register a new default version under load and hot-reload to it."""
    registry = ModelRegistry(registry_dir)
    name = sorted(registry.models())[0]
    old_id = registry.record(name).model_id
    # Re-save the current default as the next version: same weights,
    # new version id — exactly the retrain-and-redeploy drill.
    registry.save(registry.load(name).model, name)
    new_id = registry.record(name).model_id
    assert new_id != old_id, (old_id, new_id)

    box: dict = {}
    loader = threading.Thread(
        target=lambda: box.update(report=run_load(
            client, build_workload(contexts, 80, seed=21), clients=4)))
    # /healthz must answer 200 for the whole reload cycle: the
    # incumbent replica keeps serving while its replacement warms up,
    # so the server is never unroutable.  The client helper returns
    # the parsed body even on 503, and only "draining"/"unavailable"
    # are served as 503 — so asserting the status string is asserting
    # the status code.
    health_stop = threading.Event()
    health_seen: list = []

    def poll_health() -> None:
        while not health_stop.is_set():
            try:
                health_seen.append(client.healthz()["status"])
            except Exception as error:  # transport failure = downtime
                health_seen.append(f"error:{error}")
            time.sleep(0.05)

    poller = threading.Thread(target=poll_health)
    poller.start()
    loader.start()
    time.sleep(0.2)
    try:
        summary = client.reload(timeout=120.0)
    finally:
        loader.join(timeout=120)
        health_stop.set()
        poller.join(timeout=10)
    print("reload:", json.dumps(summary))
    assert summary["ok"] is True, summary
    report = box["report"]
    print("reload load:", json.dumps(report.to_json()))
    assert report.errors == 0, report  # zero non-429 failures
    bad = [s for s in health_seen if s not in ("ok", "degraded")]
    assert health_seen and not bad, (
        f"/healthz dipped during reload: {bad} of {len(health_seen)} polls"
    )
    print(f"healthz stayed 200 across {len(health_seen)} reload-time polls")

    metrics = client.metrics()
    assert metrics["reloads"] == 1, metrics
    assert new_id in metrics["models"].values(), metrics
    assert metrics["reconciles"], metrics
    print(f"reload cycle OK: {old_id} -> {new_id} with zero failures")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("registry_dir")
    parser.add_argument("contexts_path")
    parser.add_argument("--replicas", type=int, default=0)
    parser.add_argument("--reload", action="store_true")
    args = parser.parse_args()

    contexts = load_contexts(args.contexts_path)[:4]
    assert contexts, "no contexts to build a workload from"

    env = dict(os.environ)
    env["PYTHONUNBUFFERED"] = "1"
    command = [
        sys.executable, "-m", "repro.cli", "serve",
        "--registry", args.registry_dir, "--port", "0",
        "--workers", "1", "--max-batch", "8", "--queue-limit", "2",
    ]
    if args.replicas > 0:
        command += ["--replicas", str(args.replicas)]
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    port = None
    lines: list[str] = []
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        lines.append(line)
        print("serve:", line, end="")
        if line.startswith("serving on http://"):
            port = int(line.split(":")[2].split()[0])
            break
    assert port is not None, "server never came up:\n" + "".join(lines)

    try:
        client = HttpServeClient(f"http://127.0.0.1:{port}")
        health = client.healthz()
        assert health["status"] == "ok", health

        # Both tasks answer over the wire from the registry artifacts.
        context = contexts[0]
        qa = client.qa(
            f"what is the {context.table.column_names[-1]} for "
            f"{context.table.row_name(0)} ?", context)
        assert qa.ok, qa
        verify = client.verify(
            f"{context.table.row_name(0)} has a value of 123", context)
        assert verify.ok, verify

        # Overload burst: queue_limit=2 against 16 closed-loop clients
        # must produce typed 429 rejections — no hangs, no resets.
        workload = build_workload(contexts, 240, seed=11)
        report = run_load(client, workload, clients=16)
        print("load:", json.dumps(report.to_json()))
        assert report.errors == 0, report
        assert report.rejected > 0, "overload burst produced no 429s"
        assert report.completed + report.rejected == report.sent, report
        # the failure taxonomy must agree with the legacy marginals:
        # every non-success here is a typed 429, nothing else.
        assert report.failures.get("overloaded", 0) == report.rejected, report
        others = {
            kind: count for kind, count in report.failures.items()
            if kind != "overloaded" and count
        }
        assert not others, f"unexpected failure kinds under overload: {others}"

        metrics = client.metrics()
        print("metrics:", json.dumps(metrics))
        assert metrics["reconciles"], metrics
        assert metrics["accepted"] == (
            metrics["completed"] + metrics["rejected"]
            + metrics["in_flight"]
        ), metrics
        # everything this script sent (plus the 2 probes) was accounted
        assert metrics["accepted"] >= report.sent + 2, metrics
        if args.replicas > 0:
            assert len(metrics["replicas"]) == args.replicas, metrics

        # Zero-downtime reload under load (new version, POST reload).
        if args.reload:
            _reload_cycle(client, args.registry_dir, contexts)

        # SIGTERM mid-burst: clean drain, exit 0.
        box: dict = {}
        loader = threading.Thread(
            target=lambda: box.update(report=run_load(
                client, build_workload(contexts, 120, seed=12), clients=4)))
        loader.start()
        time.sleep(0.2)
        process.send_signal(signal.SIGTERM)
        loader.join(timeout=60)
        output = process.communicate(timeout=120)[0]
    finally:
        if process.poll() is None:
            process.kill()

    print(output)
    assert process.returncode == 0, f"exit {process.returncode}"
    assert "draining" in output
    marker = "final stats: "
    stats_line = next(
        line for line in output.splitlines() if marker in line)
    stats = json.loads(stats_line.split(marker, 1)[1])
    assert stats["reconciles"], stats
    assert stats["in_flight"] == 0, stats
    assert stats["accepted"] == stats["completed"] + stats["rejected"], stats
    mode = f"{args.replicas} replicas" if args.replicas else "engine"
    print(f"serve smoke OK ({mode}): overload rejected", report.rejected,
          "of", report.sent, "and the drain reconciled")


if __name__ == "__main__":
    main()
