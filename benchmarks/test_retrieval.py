"""Bench: table-store retrieval — recall and end-to-end ask latency.

A synthetic corpus with known gold tables (:mod:`repro.store.synth`)
is stored, indexed, and queried:

* **recall@{1,5,20}** — does BM25 over the inverted index surface the
  one intended table among ``REPRO_BENCH_CORPUS`` (default 10,000)
  neighbors sharing its column/city vocabulary?
* **latency** — raw ``Retriever.search`` time, and end-to-end
  ``POST /v1/ask`` time over real HTTP (retrieve → fetch → QA) against
  a stub QA backend, so the number isolates the serving+retrieval path
  from model quality.
* **build** — corpus append throughput and parallel index-build time.

Results land in ``benchmarks/BENCH_retrieval.json``; the recall gate
(recall@5 >= 0.9) is enforced under ``REPRO_BENCH_ENFORCE=1``, which is
how the CI ``store-smoke`` job runs this module.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.serve import make_server, serve_in_thread, HttpServeClient
from repro.serve.engine import InferenceResponse, Timing
from repro.serve.registry import TASK_QA
from repro.serve.stats import nearest_rank_percentiles
from repro.store import (
    Retriever,
    TableStore,
    build_index,
    gold_questions,
    synth_corpus,
)

_HERE = Path(__file__).resolve().parent
BENCH_PATH = _HERE / "BENCH_retrieval.json"

CORPUS_SIZE = int(os.environ.get("REPRO_BENCH_CORPUS", "10000"))
N_QUESTIONS = 200
N_ASK = 100
SEED = 0

#: the enforced retrieval-quality gate (the ISSUE's acceptance bar).
RECALL5_GATE = 0.9

RESULTS: dict[str, dict] = {}


def _enforcing() -> bool:
    return bool(os.environ.get("REPRO_BENCH_ENFORCE"))


class _StubQABackend:
    """Answers instantly: ask latency then measures serving+retrieval."""

    def infer(self, task, sentence, context, *, deadline_s=None,
              request_id=None, timeout=None):
        assert task == TASK_QA
        return InferenceResponse(
            id=request_id or "bench", task=task, ok=True,
            answer=(context.table.cell(0, context.table.column_names[1]).raw,),
            label=None, error=None, cached=False, model="stub-qa",
            timing=Timing(0.0, 0.0, 0.0, 1),
        )

    def note_sanitize(self, report):  # pragma: no cover - not exercised
        pass

    def stats(self):
        return {"models": {TASK_QA: "stub-qa"}, "uptime_s": 0.0,
                "draining": False}


@pytest.fixture(scope="module")
def store_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("bench-store") / "corpus"
    started = time.perf_counter()
    store = TableStore.create(root)
    store.add(synth_corpus(CORPUS_SIZE, seed=SEED))
    add_s = time.perf_counter() - started
    summary = build_index(root, workers=4)
    RESULTS["build"] = {
        "corpus_size": CORPUS_SIZE,
        "add_s": round(add_s, 2),
        "add_tables_per_s": round(CORPUS_SIZE / add_s, 1),
        "index_build_s": summary["build_s"],
        "index_workers": summary["workers"],
        "index_bytes": summary["index_bytes"],
        "terms": summary["terms"],
        "shards": summary["shards"],
    }
    print(
        f"\nstored {CORPUS_SIZE} tables in {add_s:.1f}s, indexed "
        f"{summary['terms']} terms in {summary['build_s']:.1f}s"
    )
    return root


@pytest.fixture(scope="module")
def gold(store_root):
    return gold_questions(
        N_QUESTIONS, corpus_size=CORPUS_SIZE, seed=SEED
    )


def test_recall_at_k(store_root, gold):
    retriever = Retriever.open(store_root)
    found = {1: 0, 5: 0, 20: 0}
    search_s: list[float] = []
    for question in gold:
        started = time.perf_counter()
        hits = retriever.search(question.question, k=20)
        search_s.append(time.perf_counter() - started)
        uids = [hit.uid for hit in hits]
        for k in found:
            found[k] += question.uid in uids[:k]
    recall = {
        f"recall@{k}": round(count / len(gold), 4)
        for k, count in found.items()
    }
    RESULTS["retrieval"] = {
        "n_questions": len(gold),
        **recall,
        "search_ms": nearest_rank_percentiles(search_s),
    }
    print(f"\n{recall} search p50 "
          f"{RESULTS['retrieval']['search_ms']['p50_ms']:.1f}ms")
    # shape at any corpus size: ranking beats chance by a wide margin
    assert recall["recall@20"] >= recall["recall@5"] >= recall["recall@1"]
    assert recall["recall@20"] > 0.5
    if _enforcing():
        assert recall["recall@5"] >= RECALL5_GATE, (
            f"recall@5 {recall['recall@5']:.3f} fell below the "
            f"{RECALL5_GATE} gate over {CORPUS_SIZE} tables"
        )


def test_end_to_end_ask_latency(store_root, gold):
    server = make_server(
        _StubQABackend(), retriever=Retriever.open(store_root)
    )
    serve_in_thread(server)
    try:
        client = HttpServeClient(f"http://127.0.0.1:{server.port}")
        ask_s: list[float] = []
        answered = 0
        for question in gold[:N_ASK]:
            started = time.perf_counter()
            response = client.ask(question.question, k=5)
            ask_s.append(time.perf_counter() - started)
            answered += bool(response.ok)
    finally:
        server.shutdown()
        server.server_close()
    RESULTS["ask"] = {
        "n_requests": N_ASK,
        "answered": answered,
        "ask_ms": nearest_rank_percentiles(ask_s),
    }
    print(f"\nask p50 {RESULTS['ask']['ask_ms']['p50_ms']:.1f}ms "
          f"p95 {RESULTS['ask']['ask_ms']['p95_ms']:.1f}ms")
    assert answered == N_ASK, "every gold question should retrieve"


def test_write_bench_json():
    """Write BENCH_retrieval.json (runs last in the module)."""
    assert {"build", "retrieval", "ask"} <= set(RESULTS)
    report = {
        "setup": {
            "corpus": f"synthetic, {CORPUS_SIZE} tables, seed {SEED}",
            "questions": N_QUESTIONS,
            "gates": {"recall@5": RECALL5_GATE},
            "qa_backend": "stub (latency isolates retrieval + serving)",
        },
        "results": dict(RESULTS),
    }
    BENCH_PATH.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {BENCH_PATH}")
