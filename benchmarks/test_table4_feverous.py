"""Bench: regenerate Table IV (FEVEROUS accuracy + FEVEROUS score).

Paper shape: full supervised 86.0 accuracy; UCTR unsupervised 74.8 (87%
of supervised), above MQA-QG 71.1 and far above Random 47.0; the strict
FEVEROUS score is much lower than label accuracy for every model;
few-shot + UCTR beats plain few-shot (67.3 -> 75.5).
"""

from conftest import run_once

from repro.experiments import table4_feverous


def test_table4_feverous(benchmark, scale):
    result = run_once(benchmark, table4_feverous.run, scale)
    print("\n" + result.render())
    rows = {(r["Setting"], r["Model"]): r for r in result.rows}

    supervised = rows[("Supervised", "Full baseline")]["Dev Accuracy"]
    uctr = rows[("Unsupervised", "UCTR")]["Dev Accuracy"]
    mqaqg = rows[("Unsupervised", "MQA-QG")]["Dev Accuracy"]
    random_row = rows[("Unsupervised", "Random")]["Dev Accuracy"]
    few_shot = rows[("Few-Shot", "Full baseline")]["Dev Accuracy"]
    few_shot_uctr = rows[("Few-Shot", "Full baseline+UCTR")]["Dev Accuracy"]

    # ordering (paper: 86.0 > 74.8 > 71.1 > 47.0)
    assert supervised > uctr - 3
    assert uctr > mqaqg - 1
    assert uctr > random_row + 10
    # UCTR reaches most of supervised (paper: 87%)
    assert uctr >= 0.7 * supervised
    # the strict score sits well below accuracy for every trained model
    for (setting, model), row in rows.items():
        if model == "Random":
            continue
        assert row["Dev FEVEROUS Score"] <= row["Dev Accuracy"]
    # few-shot pre-training helps (paper: 67.3 -> 75.5)
    assert few_shot_uctr >= few_shot - 3
