"""Shared scale and helpers for the benchmark harness.

Each benchmark regenerates one paper table/figure via
``repro.experiments`` and asserts the paper's qualitative *shape* (who
wins, roughly by how much) rather than absolute numbers.  Benchmarks run
once per session (``rounds=1``) because each one trains several models.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import Scale

#: benchmark scale: large enough for stable orderings, small enough to
#: keep the full harness in a few minutes.
BENCH_SCALE = Scale(name="bench", factor=1.0, synth_per_context=16, seed=11)


@pytest.fixture(scope="session")
def scale() -> Scale:
    return BENCH_SCALE


def run_once(benchmark, fn, *args):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1)


def em(cell: str) -> float:
    """Parse the EM part of an ``"EM / F1"`` cell."""
    return float(str(cell).split("/")[0])


def f1(cell: str) -> float:
    """Parse the F1 part of an ``"EM / F1"`` cell."""
    return float(str(cell).split("/")[1])
