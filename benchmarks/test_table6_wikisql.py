"""Bench: regenerate Table VI (WikiSQL denotation accuracy).

Paper shape: TAPEX supervised 88.1 dev; unsupervised UCTR 62.2 (70% of
supervised) above MQA-QG 57.8 and far above zero-shot TAPEX 21.4;
few-shot TAPEX+UCTR 62.3 above plain few-shot TAPEX 53.8.
"""

from conftest import run_once

from repro.experiments import table6_wikisql


def test_table6_wikisql(benchmark, scale):
    result = run_once(benchmark, table6_wikisql.run, scale)
    print("\n" + result.render())
    rows = {(r["Setting"], r["Model"]): r for r in result.rows}

    tapex = rows[("Supervised", "TAPEX")]["Dev Denotation Acc"]
    uctr = rows[("Unsupervised", "UCTR")]["Dev Denotation Acc"]
    mqaqg = rows[("Unsupervised", "MQA-QG")]["Dev Denotation Acc"]
    zero_shot = rows[("Unsupervised", "TAPEX (zero-shot)")]["Dev Denotation Acc"]
    few_shot = rows[("Few-Shot", "TAPEX")]["Dev Denotation Acc"]
    few_shot_uctr = rows[("Few-Shot", "TAPEX+UCTR")]["Dev Denotation Acc"]

    assert tapex > uctr - 3  # supervised on top
    assert uctr > mqaqg + 5  # paper: 62.2 vs 57.8 (ours is wider)
    assert uctr > zero_shot + 15  # paper: 62.2 vs 21.4
    assert uctr >= 0.55 * tapex  # paper: 70%
    assert few_shot_uctr >= few_shot  # paper: 53.8 -> 62.3
