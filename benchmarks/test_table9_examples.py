"""Bench: regenerate Table IX (example generations per program type)."""

from conftest import run_once

from repro.experiments import table9_examples


def test_table9_examples(benchmark, scale):
    result = run_once(benchmark, table9_examples.run, scale)
    print("\n" + result.render())
    types = [row["Type"] for row in result.rows]
    assert types == ["SQL Query", "Logical Form", "Arithmetic Expression"]
    for row in result.rows:
        assert len(row["Program"]) > 10
        assert len(row["Generated Text"]) > 10
        assert len(row["Golden Text"]) > 10
        # generated text must not leak program syntax
        assert "{" not in row["Generated Text"]
        assert "select " not in row["Generated Text"]
