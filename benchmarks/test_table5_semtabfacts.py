"""Bench: regenerate Table V (SEM-TAB-FACTS 3-way micro F1).

Paper shape: TAPAS supervised 66.7 dev; UCTR 62.6 (93% of supervised)
beats TAPAS-Transfer 59.0 and MQA-QG 53.2, all far above Random 33.3;
few-shot TAPAS+UCTR (62.4) well above plain few-shot TAPAS (48.6).
"""

from conftest import run_once

from repro.experiments import table5_semtabfacts


def test_table5_semtabfacts(benchmark, scale):
    result = run_once(benchmark, table5_semtabfacts.run, scale)
    print("\n" + result.render())
    rows = {(r["Setting"], r["Model"]): r for r in result.rows}

    supervised = rows[("Supervised", "TAPAS")]["Dev micro-F1"]
    uctr = rows[("Unsupervised", "UCTR")]["Dev micro-F1"]
    transfer = rows[("Unsupervised", "TAPAS-Transfer")]["Dev micro-F1"]
    mqaqg = rows[("Unsupervised", "MQA-QG")]["Dev micro-F1"]
    random_row = rows[("Unsupervised", "Random")]["Dev micro-F1"]
    few_shot = rows[("Few-Shot", "TAPAS")]["Dev micro-F1"]
    few_shot_uctr = rows[("Few-Shot", "TAPAS+UCTR")]["Dev micro-F1"]

    assert uctr > random_row + 15
    assert uctr > mqaqg
    # documented deviation (EXPERIMENTS.md): our engineered featurizer
    # transfers across domains nearly losslessly, so TAPAS-Transfer can
    # exceed UCTR here; we only require UCTR stays competitive.
    assert uctr > transfer - 10
    assert uctr >= 0.75 * supervised  # paper: 93%
    assert few_shot_uctr >= few_shot - 2  # paper: 48.6 -> 62.4
