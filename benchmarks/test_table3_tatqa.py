"""Bench: regenerate Table III (TAT-QA dev, EM/F1 by evidence type).

Paper shape: TAGOP supervised on top; UCTR far above MQA-QG (42.4 vs
27.7 F1) and at a substantial fraction of supervised (67%); few-shot
TAGOP+UCTR above plain few-shot TAGOP.
"""

from conftest import f1, run_once

from repro.experiments import table3_tatqa


def test_table3_tatqa(benchmark, scale):
    result = run_once(benchmark, table3_tatqa.run, scale)
    print("\n" + result.render())
    supervised = f1(result.cell("TAGOP", "Total"))
    uctr = f1(result.cell("UCTR", "Total"))
    no_t2t = f1(result.cell("UCTR -w/o T2T", "Total"))
    mqaqg = f1(result.cell("MQA-QG", "Total"))
    few_shot = f1(result.cell("TAGOP", "Total"))  # first match is supervised
    rows = {(r["Setting"], r["Model"]): r for r in result.rows}
    few_shot = f1(rows[("Few-Shot", "TAGOP")]["Total"])
    few_shot_uctr = f1(rows[("Few-Shot", "TAGOP+UCTR")]["Total"])

    # unsupervised ordering: UCTR >> MQA-QG (paper: 42.4 vs 27.7)
    assert uctr > mqaqg + 5
    assert no_t2t > mqaqg + 5
    # UCTR reaches a large fraction of supervised (paper: 67%)
    assert uctr >= 0.5 * supervised
    assert supervised >= uctr - 2  # supervised stays on top (tolerance)
    # few-shot: synthetic pre-training helps (paper: 12.1 -> 55.4)
    assert few_shot_uctr >= few_shot - 2
    # weak baselines stay weak overall
    text_only = f1(rows[("Supervised", "Text-Span only")]["Total"])
    cell_only = f1(rows[("Supervised", "Table-Cell only")]["Total"])
    assert supervised > text_only
    assert supervised > cell_only
