"""Bench: serial hot-path throughput (value equality, schema lookups,
sorting, parsing, end-to-end generation).

Not a paper table — this harness tracks the executor hot path itself.
Each micro-benchmark exercises one cached operation through the public
API only, so the same file measures pre- and post-caching builds; the
recorded numbers land in ``benchmarks/BENCH_hotpath.json`` and are
compared against the committed pre-PR baseline
(``benchmarks/BENCH_hotpath_baseline.json``).

The regression gate (current < 70% of baseline samples-per-second)
only *fails* when ``REPRO_BENCH_ENFORCE=1`` — CI sets it; developer
laptops with different hardware just get the numbers printed.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.datasets import make_feverous
from repro.datasets.feverous import FeverousConfig
from repro.pipelines import UCTR, UCTRConfig
from repro.programs.sql import parse_sql
from repro.tables.table import Table
from repro.tables.values import parse_value

_HERE = Path(__file__).resolve().parent
BENCH_PATH = _HERE / "BENCH_hotpath.json"
BASELINE_PATH = _HERE / "BENCH_hotpath_baseline.json"

#: results accumulated across the tests in this module, written once.
RESULTS: dict[str, float] = {}

_MIXED_CELLS = [
    "1,000", "$1,000", "1000", "12%", "-42", "3.14159", "0.5",
    "January 5, 2020", "2020-01-05", "March 14, 1999", "2,500,000",
    "alpha", "Beta", "GAMMA", "delta airlines", "true", "yes", "no",
    "€75", "88.8", "n/a", "7", "£12,345.67",
]


def _ops_per_sec(fn, *, repeat: int = 5) -> float:
    """Best-of-``repeat`` throughput for ``fn() -> n_ops``."""
    best = 0.0
    for _ in range(repeat):
        started = time.perf_counter()
        ops = fn()
        elapsed = time.perf_counter() - started
        if elapsed > 0:
            best = max(best, ops / elapsed)
    return best


def test_value_equals_throughput():
    values = [parse_value(cell) for cell in _MIXED_CELLS]
    pairs = [(a, b) for a in values for b in values]

    def run() -> int:
        total = 0
        for _ in range(40):
            for a, b in pairs:
                if a.equals(b):
                    total += 1
        assert total > 0
        return 40 * len(pairs)

    rate = _ops_per_sec(run)
    RESULTS["value_equals_per_sec"] = round(rate, 1)
    print(f"\nValue.equals: {rate:,.0f} comparisons/sec")
    assert rate > 0


def test_schema_index_throughput():
    table = Table.from_rows(
        [f"column {i}" for i in range(12)],
        [[str(i * j) for i in range(12)] for j in range(3)],
    )
    names = table.column_names

    def run() -> int:
        for _ in range(2000):
            for name in names:
                table.schema.index(name.upper())
        return 2000 * len(names)

    rate = _ops_per_sec(run)
    RESULTS["schema_index_per_sec"] = round(rate, 1)
    print(f"\nSchema.index: {rate:,.0f} lookups/sec")
    assert rate > 0


def test_sort_and_filter_throughput():
    rows = [
        [_MIXED_CELLS[(i * 7 + j) % len(_MIXED_CELLS)] for j in range(3)]
        for i in range(60)
    ]
    table = Table.from_rows(["a", "b", "c"], rows)
    query = parse_sql("select a from w order by b desc limit 5")

    def run() -> int:
        for _ in range(300):
            query.execute(table)
        return 300

    rate = _ops_per_sec(run)
    RESULTS["sql_order_by_per_sec"] = round(rate, 1)
    print(f"\nexecute_sql order-by: {rate:,.0f} queries/sec")
    assert rate > 0


def test_where_aggregate_throughput():
    """WHERE + aggregate over a wider table (the columnar filter path)."""
    rows = [
        [
            ["alpha", "beta", "Gamma", "delta"][i % 4],
            str((i * 37) % 400),
            _MIXED_CELLS[i % len(_MIXED_CELLS)],
        ]
        for i in range(80)
    ]
    table = Table.from_rows(["name", "score", "mixed"], rows)
    query = parse_sql(
        "select count ( * ) , sum ( score ) from w "
        "where score > 100 and name != 'beta'"
    )

    def run() -> int:
        for _ in range(300):
            query.execute(table)
        return 300

    rate = _ops_per_sec(run)
    RESULTS["sql_where_agg_per_sec"] = round(rate, 1)
    print(f"\nexecute_sql where+agg: {rate:,.0f} queries/sec")
    assert rate > 0


def test_parse_value_throughput():
    cells = _MIXED_CELLS * 10

    def run() -> int:
        for cell in cells:
            parse_value(cell)
        return len(cells)

    rate = _ops_per_sec(run, repeat=20)
    RESULTS["parse_value_per_sec"] = round(rate, 1)
    print(f"\nparse_value: {rate:,.0f} parses/sec")
    assert rate > 0


def test_serial_generation_throughput():
    bench = make_feverous(
        FeverousConfig(train_contexts=40, dev_contexts=4, test_contexts=4)
    )
    contexts = list(bench.train.contexts)[:40]
    framework = UCTR(
        UCTRConfig(
            program_kinds=("logic", "sql"), samples_per_context=8, seed=11
        )
    )
    framework.fit(contexts)
    framework.generate(contexts[:4])  # warm-up outside the timing

    # Best-of-3, same as the micro-benchmarks: generation is
    # deterministic per (contexts, seed), so repeats time identical work.
    rate = 0.0
    samples: list = []
    for _ in range(3):
        started = time.perf_counter()
        samples = framework.generate(contexts)
        elapsed = time.perf_counter() - started
        if elapsed > 0:
            rate = max(rate, len(samples) / elapsed)
    RESULTS["samples_per_sec"] = round(rate, 1)
    RESULTS["samples"] = len(samples)
    print(f"\nserial generation: {len(samples)} samples "
          f"({rate:.1f} samples/sec best-of-3)")
    assert samples


def test_write_bench_json():
    """Write BENCH_hotpath.json and gate against the committed baseline.

    Runs last in the module (pytest preserves file order) so every
    micro-benchmark above has already filled ``RESULTS``.
    """
    report: dict[str, object] = {"current": dict(RESULTS)}
    baseline = None
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
        report["baseline"] = baseline.get("current", baseline)
    if baseline is not None:
        base = report["baseline"]
        speedups = {
            key: round(RESULTS[key] / base[key], 2)
            for key in RESULTS
            if isinstance(base.get(key), (int, float)) and base.get(key)
        }
        report["speedup_vs_baseline"] = speedups
        print("\nspeedup vs committed baseline:")
        for key, factor in sorted(speedups.items()):
            print(f"  {key:<24} {factor:.2f}x")
    BENCH_PATH.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {BENCH_PATH}")
    if baseline is not None and os.environ.get("REPRO_BENCH_ENFORCE"):
        base_rate = report["baseline"].get("samples_per_sec")
        current = RESULTS.get("samples_per_sec", 0.0)
        if isinstance(base_rate, (int, float)) and base_rate > 0:
            assert current >= 0.7 * base_rate, (
                f"throughput regression: {current:.1f} samples/sec is below "
                f"70% of the committed baseline {base_rate:.1f}"
            )
        # The columnar engine must hold at least 2x the committed
        # pre-caching order-by baseline even on slower CI hardware
        # (the measured speedup on the reference machine is far higher
        # — see benchmarks/BENCH_hotpath.json and docs/PERFORMANCE.md).
        base_order = report["baseline"].get("sql_order_by_per_sec")
        current_order = RESULTS.get("sql_order_by_per_sec", 0.0)
        if isinstance(base_order, (int, float)) and base_order > 0:
            assert current_order >= 2.0 * base_order, (
                f"columnar regression: {current_order:.1f} order-by "
                f"queries/sec is below 2x the committed baseline "
                f"{base_order:.1f}"
            )
