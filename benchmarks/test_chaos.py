"""Bench: availability under a hung replica — resilience on vs off.

What this measures
------------------
The payoff of the serving resilience layer (hedged dispatch +
per-replica circuit breakers) under the fault it exists for: one
replica of a 2-replica pool **hangs** — its child swallows every
request and never replies, the one failure mode that produces no
signal at all.  Both configurations serve the identical closed-loop
workload against the identical injected fault
(:mod:`repro.serve.chaos`, deterministic gating):

* ``baseline`` — hedging and breakers disabled.  Every request routed
  to the hung slot waits out the full request timeout and surfaces as
  a ``replica_failed`` error: availability collapses toward the
  healthy slot's routing share (~50%), and the tail is pinned at the
  timeout.
* ``resilient`` — hedging and breakers enabled.  The first requests to
  the hung slot are rescued by hedges (fired after the adaptive p95
  delay); each hedge win strikes the hung primary, the breaker trips,
  and all subsequent traffic spills deterministically to the healthy
  slot.  Availability stays at 100% and the tail is bounded by the
  hedge delay, not the timeout.

Acceptance (asserted here and enforced by the CI ``chaos`` job):
resilient availability >= 95% (``AVAILABILITY_FLOOR``), baseline
measurably collapses below it, and both runs reconcile with zero
silent losses (``completed + errors + rejected == sent``).

Why fixed-service stub models: same reasoning as
``test_serve_scale.py`` — the pool, not the model, is under test; the
stubs make per-replica capacity exact and host-independent.

Results land in ``benchmarks/BENCH_chaos.json``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.serve import (
    EngineConfig,
    HedgePolicy,
    ModelRegistry,
    PoolConfig,
    ServeClient,
    build_workload,
    pool_from_registry,
    run_load,
)
from repro.serve import chaos
from repro.serve.chaos import ServeFaultPlan, ServeFaultSpec
from repro.serve.stub import FixedServiceQA, FixedServiceVerifier
from repro.tables import Paragraph, Table, TableContext

pytestmark = pytest.mark.timeout(600)

_HERE = Path(__file__).resolve().parent
BENCH_PATH = _HERE / "BENCH_chaos.json"

#: the CI-enforced goodput floor under a single hung replica with the
#: resilience layer on.
AVAILABILITY_FLOOR = 0.95

#: per-sample service time inside a replica, seconds.
SERVICE_QA = 0.020
SERVICE_VERIFY = 0.040

#: closed-loop workload size and client count.
N_REQUESTS = 120
CLIENTS = 8

#: how long a request may wait on a hung replica before the pool calls
#: it failed.  Short enough that the baseline's collapse is measured in
#: seconds not minutes, but with comfortable slack above the hedge
#: ceiling (0.3 s) plus healthy-slot queueing, so a rescued request is
#: never failed by the clock that exists to bound the *unrescued* ones.
REQUEST_TIMEOUT_S = 2.0

#: a replica-0 child that swallows every request, forever.
HANG_PLAN = ServeFaultPlan((ServeFaultSpec(kind="hang", replica=0),))

RESULTS: dict[str, object] = {}


def _bench_context() -> TableContext:
    table = Table.from_rows(
        header=["player", "team", "points", "rebounds", "assists"],
        raw_rows=[
            ["john smith", "hawks", "31", "7", "4"],
            ["mike jones", "bulls", "22", "11", "9"],
            ["alan reed", "hawks", "17", "4", "2"],
            ["bo chen", "heat", "28", "9", "6"],
            ["raj patel", "bulls", "12", "6", "11"],
            ["omar diaz", "heat", "25", "8", "3"],
        ],
        title="player statistics",
        row_name_column="player",
    )
    return TableContext(
        table=table,
        paragraphs=(
            Paragraph(text="league statistics for the season .",
                      source="context"),
        ),
        uid="ctx-chaos",
    )


@pytest.fixture(scope="module")
def context() -> TableContext:
    return _bench_context()


@pytest.fixture(scope="module")
def registry_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("chaos-registry")
    registry = ModelRegistry(root)
    registry.save(FixedServiceQA(SERVICE_QA), "qa-stub")
    registry.save(FixedServiceVerifier(SERVICE_VERIFY), "verify-stub")
    return root


def _measure(registry_dir, context, resilient: bool) -> dict:
    config = PoolConfig(
        replicas=2,
        engine=EngineConfig(
            workers=1, max_batch_size=8, queue_limit=64, cache_size=0,
        ),
        request_timeout_s=REQUEST_TIMEOUT_S,
        hedge=HedgePolicy(floor_s=0.05, ceiling_s=0.3) if resilient
        else None,
        breaker_threshold=3 if resilient else 0,
        # longer than the run: once tripped, the hung slot stays out
        # (half-open probes against a hang would each cost a hedge)
        breaker_cooldown_s=60.0,
    )
    with chaos.injected(HANG_PLAN):
        pool = pool_from_registry(str(registry_dir), config=config)
        pool.start()
    try:
        workload = build_workload([context], N_REQUESTS, seed=7)
        report = run_load(ServeClient(pool), workload, clients=CLIENTS)
        stats = pool.stats()
    finally:
        pool.stop(drain=True)
    # zero silent losses, whatever the fault did
    assert report.completed + report.errors + report.rejected == (
        report.sent
    ), report
    assert stats["reconciles"], stats
    assert stats["in_flight"] == 0, stats
    return {
        "mode": "resilient" if resilient else "baseline",
        "availability": round(report.completed / report.sent, 4),
        "completed": report.completed,
        "sent": report.sent,
        "failures": dict(report.failures),
        "latency_ms": report.latency["overall"],
        "hedges": stats["hedges"],
        "spills": stats["spills"],
        "breaker_trips": sum(
            entry["breaker"]["trips"]
            for entry in stats["replicas"]
            if entry.get("breaker")
        ),
    }


def test_availability_under_hung_replica(registry_dir, context):
    """Acceptance: >= 95% goodput with resilience on; collapse off."""
    baseline = _measure(registry_dir, context, resilient=False)
    resilient = _measure(registry_dir, context, resilient=True)
    for result in (baseline, resilient):
        print(
            f"\n{result['mode']}: availability "
            f"{result['availability']:.1%}, p99 "
            f"{result['latency_ms']['p99_ms']:.0f} ms, hedges "
            f"{result['hedges']}, spills {result['spills']}, trips "
            f"{result['breaker_trips']}"
        )
    RESULTS["baseline"] = baseline
    RESULTS["resilient"] = resilient
    assert resilient["availability"] >= AVAILABILITY_FLOOR, (
        f"resilient goodput {resilient['availability']:.1%} under a "
        f"hung replica is below the {AVAILABILITY_FLOOR:.0%} floor"
    )
    # the gap is the result: without the resilience layer, a single
    # hung replica takes its whole routing share down.
    assert baseline["availability"] < AVAILABILITY_FLOOR, (
        "baseline did not collapse — the fault injection is not biting"
    )
    assert resilient["availability"] > baseline["availability"]
    # Latency is recorded for *successes only*, so the baseline's tail
    # excludes the half of the workload it failed — it cannot be
    # compared to the resilient tail directly.  The meaningful bound:
    # even with every rescued (hedged) request included, the resilient
    # p99 stays well under the request timeout — hung requests complete
    # in bounded time instead of burning the full timeout and failing.
    assert resilient["latency_ms"]["p99_ms"] < REQUEST_TIMEOUT_S * 1e3 / 2
    # the machinery fired: hedges rescued the first hung requests,
    # then the breaker took the slot out.
    assert resilient["hedges"]["won"] >= 1
    assert resilient["breaker_trips"] >= 1
    assert resilient["failures"].get("replica_failed", 0) == 0


def test_write_bench_json():
    """Write BENCH_chaos.json (runs last in the module)."""
    assert "resilient" in RESULTS, "availability benchmark did not record"
    report = {
        "methodology": {
            "note": (
                "Closed-loop workload against a 2-replica pool whose "
                "slot-0 child deterministically swallows every request "
                "(kind=hang, repro.serve.chaos).  Identical workload "
                "and fault for both modes; only the resilience layer "
                "differs.  Fixed-service stub models isolate the "
                "serving layer from host compute."
            ),
            "fault": "hang, replica 0, every request",
            "replicas": 2,
            "requests": N_REQUESTS,
            "clients": CLIENTS,
            "request_timeout_s": REQUEST_TIMEOUT_S,
            "service_ms": {
                "qa": SERVICE_QA * 1e3,
                "verify": SERVICE_VERIFY * 1e3,
            },
            "resilient_config": {
                "hedge": {"floor_s": 0.05, "ceiling_s": 0.3,
                          "quantile": 0.95},
                "breaker_threshold": 3,
            },
            "availability_floor": AVAILABILITY_FLOOR,
            "host_cpu_count": os.cpu_count(),
        },
        "results": dict(RESULTS),
    }
    BENCH_PATH.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {BENCH_PATH}")
