"""Bench: serial vs parallel generation throughput (samples/sec).

Not a paper table — this harness tracks the engine itself.  Both runs
must emit byte-identical samples (the determinism contract); the
recorded ``samples_per_sec`` numbers are the throughput comparison.  On
a single-core box parallel may not win — the point is that the numbers
are *recorded* so regressions and speedups are visible in benchmark
output (``--benchmark-only`` prints them under ``extra_info``).
"""

from __future__ import annotations

import json
import multiprocessing
import time

import pytest

from repro.datasets import make_feverous
from repro.datasets.feverous import FeverousConfig
from repro.pipelines import UCTR, UCTRConfig

#: contexts and volume sized so one run takes seconds, not minutes.
N_CONTEXTS = 40
PER_CONTEXT = 8


@pytest.fixture(scope="module")
def workbench():
    bench = make_feverous(
        FeverousConfig(train_contexts=N_CONTEXTS, dev_contexts=4,
                       test_contexts=4)
    )
    contexts = list(bench.train.contexts)[:N_CONTEXTS]
    framework = UCTR(
        UCTRConfig(program_kinds=("logic",), samples_per_context=PER_CONTEXT,
                   seed=11)
    )
    framework.fit(contexts)
    return framework, contexts


def _timed_generate(framework, contexts, workers):
    started = time.perf_counter()
    samples = framework.generate(contexts, workers=workers)
    elapsed = time.perf_counter() - started
    return samples, elapsed


def _fingerprint(samples):
    return json.dumps([s.to_json() for s in samples], sort_keys=True)


def test_serial_throughput(benchmark, workbench):
    framework, contexts = workbench
    samples, elapsed = benchmark.pedantic(
        _timed_generate, args=(framework, contexts, 1),
        rounds=1, iterations=1,
    )
    rate = len(samples) / elapsed if elapsed > 0 else 0.0
    benchmark.extra_info["workers"] = 1
    benchmark.extra_info["samples"] = len(samples)
    benchmark.extra_info["samples_per_sec"] = round(rate, 1)
    print(f"\nserial: {len(samples)} samples in {elapsed:.2f}s "
          f"({rate:.1f} samples/sec)")
    assert samples


def test_parallel_throughput(benchmark, workbench):
    framework, contexts = workbench
    workers = min(4, max(2, multiprocessing.cpu_count()))
    serial_samples, serial_elapsed = _timed_generate(framework, contexts, 1)
    samples, elapsed = benchmark.pedantic(
        _timed_generate, args=(framework, contexts, workers),
        rounds=1, iterations=1,
    )
    rate = len(samples) / elapsed if elapsed > 0 else 0.0
    serial_rate = (
        len(serial_samples) / serial_elapsed if serial_elapsed > 0 else 0.0
    )
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["samples"] = len(samples)
    benchmark.extra_info["samples_per_sec"] = round(rate, 1)
    benchmark.extra_info["serial_samples_per_sec"] = round(serial_rate, 1)
    benchmark.extra_info["speedup"] = round(
        rate / serial_rate, 2) if serial_rate else None
    print(f"\nparallel (workers={workers}): {len(samples)} samples in "
          f"{elapsed:.2f}s ({rate:.1f} samples/sec; serial "
          f"{serial_rate:.1f}/sec)")
    # determinism is non-negotiable regardless of throughput
    assert _fingerprint(samples) == _fingerprint(serial_samples)
