"""Bench: synthetic-data diversity analysis (extension of paper §V-F).

Quantifies the paper's central qualitative claim: UCTR data covers many
reasoning types with multi-cell evidence; MQA-QG only single-cell
lookups.
"""

from conftest import run_once

from repro.experiments import analysis_diversity


def test_analysis_diversity(benchmark, scale):
    result = run_once(benchmark, analysis_diversity.run, scale)
    print("\n" + result.render())
    rows = {row["Generator"]: row for row in result.rows}
    uctr, mqaqg = rows["UCTR"], rows["MQA-QG"]

    # reasoning-type coverage: UCTR spans many categories, MQA-QG one
    assert uctr["Categories"] >= 7
    assert mqaqg["Categories"] <= 2
    assert uctr["Category entropy"] > mqaqg["Category entropy"] + 1.0
    # reasoning depth: complex claims touch several cells
    assert uctr["Evidence cells/sample"] > mqaqg["Evidence cells/sample"] + 1.0
    # structural diversity: many distinct program patterns
    assert uctr["Patterns"] >= 15
