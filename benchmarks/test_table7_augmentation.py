"""Bench: regenerate Table VII (UCTR as data augmentation).

Paper shape: clear gains on the low-resource domains (TAT-QA +6.3 test
F1, SEM-TAB-FACTS +3.1 dev) and roughly neutral results on the
data-rich benchmarks (WikiSQL, FEVEROUS).
"""

from conftest import f1, run_once

from repro.experiments import table7_augmentation


def test_table7_augmentation(benchmark, scale):
    result = run_once(benchmark, table7_augmentation.run, scale)
    print("\n" + result.render())
    baseline = result.cell("Baseline", "TAT-QA Dev")
    augmented = result.cell("Baseline+UCTR", "TAT-QA Dev")

    # low-resource domains: augmentation must not hurt, and the average
    # across the two low-resource benchmarks should improve.
    tat_delta = f1(result.cell("Baseline+UCTR", "TAT-QA Test")) - f1(
        result.cell("Baseline", "TAT-QA Test")
    )
    stf_delta = result.cell("Baseline+UCTR", "SEM-TAB-FACTS Dev") - result.cell(
        "Baseline", "SEM-TAB-FACTS Dev"
    )
    assert tat_delta >= -4.0
    assert stf_delta >= -4.0
    assert (tat_delta + stf_delta) / 2 >= -2.0

    # data-rich benchmarks: roughly neutral (paper: -0.2 / -0.1)
    wsql_delta = result.cell("Baseline+UCTR", "WiKiSQL Dev") - result.cell(
        "Baseline", "WiKiSQL Dev"
    )
    fev_delta = result.cell("Baseline+UCTR", "FEVEROUS Dev") - result.cell(
        "Baseline", "FEVEROUS Dev"
    )
    assert abs(wsql_delta) <= 10
    assert abs(fev_delta) <= 10
