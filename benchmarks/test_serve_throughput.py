"""Bench: serving throughput — micro-batching vs batch-size-1 serial.

Drives the same deterministic closed-loop workload
(:mod:`repro.serve.loadgen`) through two engine configurations that
differ only in batching policy:

* **serial**  — ``max_batch_size=1``: every request is its own model
  call (the classic one-request-per-dispatch server).
* **batched** — ``max_batch_size=32`` with no linger: the worker
  greedily drains everything queued into one model call.  (A linger
  only helps open-loop arrivals; closed-loop clients resubmit the
  moment a batch completes, so batches form without waiting and any
  linger is pure idle time.)

Both run one worker and no response cache, so the measured difference
is batch amortization alone.  The verifier is sized for serving
(``hidden_dims=(512, 256)``) so its forward pass — the part batching
amortizes into one matrix multiply, the way real transformer serving
does — dominates per-claim featurization; QA is reported alongside
(its ``predict_batch`` is contractually a per-sample loop, so its
gains are engine-overhead amortization only).

Results land in ``benchmarks/BENCH_serve.json``.  The >=2x speedup
assertion on the verify workload always runs — it is this PR's
acceptance criterion, not a hardware-sensitive regression gate.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.models.qa import QAConfig, TagOpQA
from repro.models.verifier import FactVerifier, VerifierConfig
from repro.pipelines.samples import ReasoningSample, TaskType
from repro.sampling.labeler import ClaimLabel
from repro.serve import (
    EngineConfig,
    InferenceEngine,
    ServeClient,
    TASK_QA,
    TASK_VERIFY,
    build_workload,
    run_load,
)
from repro.tables import Paragraph, Table, TableContext

_HERE = Path(__file__).resolve().parent
BENCH_PATH = _HERE / "BENCH_serve.json"

#: requests per measured load run.
N_REQUESTS = 400

#: closed-loop client threads (the concurrency batching feeds on).
N_CLIENTS = 8

#: results accumulated across the tests in this module, written once.
RESULTS: dict[str, object] = {}


def _bench_context() -> TableContext:
    table = Table.from_rows(
        header=["player", "team", "points", "rebounds", "assists"],
        raw_rows=[
            ["john smith", "hawks", "31", "7", "4"],
            ["mike jones", "bulls", "22", "11", "9"],
            ["alan reed", "hawks", "17", "4", "2"],
            ["bo chen", "heat", "28", "9", "6"],
            ["raj patel", "bulls", "12", "6", "11"],
            ["omar diaz", "heat", "25", "8", "3"],
        ],
        title="player statistics",
        row_name_column="player",
    )
    return TableContext(
        table=table,
        paragraphs=(
            Paragraph(text="league statistics for the season .",
                      source="context"),
        ),
        uid="ctx-serve-bench",
    )


@pytest.fixture(scope="module")
def context() -> TableContext:
    return _bench_context()


@pytest.fixture(scope="module")
def models(context):
    qa_samples = []
    verify_samples = []
    table = context.table
    for row in range(table.n_rows):
        name = table.row_name(row)
        for column in table.numeric_column_names():
            cell = table.cell(row, column)
            qa_samples.append(ReasoningSample(
                uid=f"bq-{row}-{column}",
                task=TaskType.QUESTION_ANSWERING,
                context=context,
                sentence=f"what is the {column} for {name} ?",
                answer=(cell.raw,),
            ))
            for label, value in (
                (ClaimLabel.SUPPORTED, cell.raw),
                (ClaimLabel.REFUTED, "999999"),
            ):
                verify_samples.append(ReasoningSample(
                    uid=f"bv-{row}-{column}-{label.value}",
                    task=TaskType.FACT_VERIFICATION,
                    context=context,
                    sentence=f"for {name} , the {column} is {value} .",
                    label=label,
                ))
    qa = TagOpQA(QAConfig(epochs=10, seed=0))
    qa.fit(qa_samples)
    # Serving-scale classifier: the forward pass must dominate (that is
    # what micro-batching amortizes); the default tiny eval MLP is
    # featurization-bound and would understate batching on any model
    # big enough to need a serving stack.
    verifier = FactVerifier(
        VerifierConfig(epochs=10, seed=0, hidden_dims=(512, 256))
    )
    verifier.fit(verify_samples)
    return {TASK_QA: qa, TASK_VERIFY: verifier}


def _measure(
    models, context, *, max_batch_size: int, tasks, repeat: int = 3
) -> dict:
    """Best-of-``repeat`` sustained RPS of one engine configuration."""
    best: dict | None = None
    for _ in range(repeat):
        engine = InferenceEngine(
            models,
            EngineConfig(
                workers=1,
                max_batch_size=max_batch_size,
                max_wait_s=0.0,   # greedy flush; see module docstring
                queue_limit=4096,
                cache_size=0,     # no cache: measure compute, not memoization
            ),
        )
        workload = build_workload(
            [context], N_REQUESTS, tasks=tasks, seed=42
        )
        with engine:
            report = run_load(
                ServeClient(engine), workload, clients=N_CLIENTS
            )
            stats = engine.stats()
        assert report.errors == 0 and report.rejected == 0
        assert report.completed == N_REQUESTS
        assert stats["reconciles"]
        candidate = {
            "rps": round(report.rps, 1),
            "latency": report.latency,
            "mean_batch_size": stats["batches"]["mean_size"],
            "max_batch_seen": stats["batches"]["max_size"],
        }
        if best is None or candidate["rps"] > best["rps"]:
            best = candidate
    return best


def test_verify_micro_batching_speedup(models, context):
    """Acceptance: batched verify throughput >= 2x batch-size-1 serial."""
    serial = _measure(
        models, context, max_batch_size=1, tasks=(TASK_VERIFY,)
    )
    batched = _measure(
        models, context, max_batch_size=32, tasks=(TASK_VERIFY,)
    )
    speedup = batched["rps"] / max(1e-9, serial["rps"])
    RESULTS["verify"] = {
        "serial": serial,
        "batched": batched,
        "speedup": round(speedup, 2),
    }
    print(
        f"\nverify: serial {serial['rps']:.0f} rps -> batched "
        f"{batched['rps']:.0f} rps ({speedup:.2f}x, mean batch "
        f"{batched['mean_batch_size']:.1f})"
    )
    assert batched["mean_batch_size"] > 1.0, "batching never engaged"
    assert speedup >= 2.0, (
        f"micro-batching must at least double verify throughput; "
        f"got {speedup:.2f}x ({serial['rps']:.0f} -> {batched['rps']:.0f} rps)"
    )


def test_qa_and_mixed_workloads_reported(models, context):
    """QA and mixed workloads: recorded, sanity-gated only.

    QA's predict_batch is contractually a per-sample loop (bitwise-
    identical scores beat batch amortization there), so batching must
    not *hurt*; the speedup requirement lives on the verify workload.
    """
    for key, tasks in (
        ("qa", (TASK_QA,)),
        ("mixed", (TASK_QA, TASK_VERIFY)),
    ):
        serial = _measure(models, context, max_batch_size=1, tasks=tasks)
        batched = _measure(models, context, max_batch_size=32, tasks=tasks)
        speedup = batched["rps"] / max(1e-9, serial["rps"])
        RESULTS[key] = {
            "serial": serial,
            "batched": batched,
            "speedup": round(speedup, 2),
        }
        print(
            f"\n{key}: serial {serial['rps']:.0f} rps -> batched "
            f"{batched['rps']:.0f} rps ({speedup:.2f}x)"
        )
        assert speedup > 0.8, f"batching degraded the {key} workload"


def test_write_bench_json():
    """Write BENCH_serve.json (runs last in the module)."""
    assert "verify" in RESULTS, "speedup benchmark did not record results"
    report = {
        "workload": {
            "requests_per_run": N_REQUESTS,
            "clients": N_CLIENTS,
            "workers": 1,
            "cache": "disabled",
            "batched_max_batch_size": 32,
        },
        "results": dict(RESULTS),
    }
    BENCH_PATH.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {BENCH_PATH}")
