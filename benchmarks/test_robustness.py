"""Bench: messy-table robustness — corruption, sanitization, recovery.

For each of the four paper benchmarks, one model is trained on clean
UCTR synthetic data and evaluated three ways on the dev set:

* **clean**     — the dev tables as-is;
* **perturbed** — dev tables corrupted with the "heavy" profile of
  :mod:`repro.messy` (every operator: abbreviated/merged headers,
  currency, units, footnotes, locale noise, dashes, duplicated and
  shuffled columns, transposes);
* **sanitized** — the perturbed tables repaired best-effort with
  :mod:`repro.sanitize` before prediction.

Two recovery measures are recorded:

* the benchmark **metric** (EM for QA, accuracy for verification), and
* **fidelity** — agreement with the model's own clean-table
  predictions.  Fidelity is the artifact-free recovery measure: it
  asks "does the model behave as if the table were clean again?"
  independent of whether the clean-table prediction was right.

The distinction matters for FEVEROUS: a verifier that cannot read a
corrupted table drifts toward "refuted", which *wins for free* on
gold-refuted claims.  Sanitization removes that crutch — raw accuracy
can dip a hair below the perturbed arm while fidelity rises sharply.
The enforced gates are therefore:

* fidelity(sanitized) > fidelity(perturbed) on EVERY benchmark;
* metric(sanitized) >= metric(perturbed) - 2.5 on every benchmark
  (floor against genuine sanitizer regressions);
* mean metric across benchmarks recovers by >= 5 points.

Results land in ``benchmarks/BENCH_robustness.json``; gates run under
``REPRO_BENCH_ENFORCE=1`` (the CI robustness job).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments.config import benchmark, uctr_synthetic
from repro.messy import perturb_samples
from repro.sanitize import sanitize_samples
from repro.train import (
    TrainingPlan,
    evaluate_qa,
    evaluate_verifier,
    train_qa,
    train_verifier,
)

_HERE = Path(__file__).resolve().parent
BENCH_PATH = _HERE / "BENCH_robustness.json"

#: per-benchmark metric floor: sanitized may trail perturbed by at most
#: this much (the FEVEROUS refuted-bias artifact; see module docstring).
METRIC_FLOOR = 2.5

#: the mean metric across benchmarks must recover by at least this much.
MEAN_RECOVERY = 5.0

#: (benchmark, task, metric name) in run order.
BENCHMARKS = (
    ("tatqa", "qa", "em"),
    ("wikisql", "qa", "em"),
    ("feverous", "verify", "accuracy"),
    ("semtabfacts", "verify", "accuracy"),
)

#: results accumulated across the tests in this module, written once.
RESULTS: dict[str, dict] = {}


def _enforcing() -> bool:
    return bool(os.environ.get("REPRO_BENCH_ENFORCE"))


def _predictions(task: str, model, samples) -> list:
    if task == "qa":
        return [tuple(model.predict(sample)) for sample in samples]
    return list(model.predict(list(samples)))


def _agreement(reference: list, candidate: list) -> float:
    assert len(reference) == len(candidate) and reference
    same = sum(a == b for a, b in zip(reference, candidate))
    return round(100.0 * same / len(reference), 1)


@pytest.mark.parametrize("name,task,metric", BENCHMARKS)
def test_robustness(name, task, metric, scale):
    bench = benchmark(name, scale)
    dev = list(bench.dev.gold)
    perturbed = perturb_samples(dev, f"bench-robust:{name}", "heavy")
    sanitized, report = sanitize_samples(perturbed)
    assert report.errors == [], "sanitizer stages must not fail"

    synthetic = uctr_synthetic(name, scale, "full")
    if task == "qa":
        model = train_qa(TrainingPlan.unsupervised(synthetic))
        scores = {
            arm: evaluate_qa(model, samples).em
            for arm, samples in (
                ("clean", dev), ("perturbed", perturbed),
                ("sanitized", sanitized),
            )
        }
    else:
        model = train_verifier(TrainingPlan.unsupervised(synthetic))
        scores = {
            arm: evaluate_verifier(model, samples).accuracy
            for arm, samples in (
                ("clean", dev), ("perturbed", perturbed),
                ("sanitized", sanitized),
            )
        }
    clean_preds = _predictions(task, model, dev)
    fidelity = {
        "perturbed": _agreement(
            clean_preds, _predictions(task, model, perturbed)
        ),
        "sanitized": _agreement(
            clean_preds, _predictions(task, model, sanitized)
        ),
    }
    RESULTS[name] = {
        "task": task,
        "metric": metric,
        "n_dev": len(dev),
        "scores": {arm: round(value, 1) for arm, value in scores.items()},
        "fidelity_to_clean": fidelity,
        "sanitize": {
            "cells_repaired": report.repaired_cells,
            "cells_kept_text": report.kept_text_cells,
            "structure_repairs": report.structure_repairs,
        },
    }
    print(
        f"\n{name} ({metric}): clean={scores['clean']:.1f} "
        f"perturbed={scores['perturbed']:.1f} "
        f"sanitized={scores['sanitized']:.1f} | fidelity "
        f"{fidelity['perturbed']:.1f} -> {fidelity['sanitized']:.1f}"
    )

    # shape that must hold at any scale: corruption hurts, repairs land
    assert scores["perturbed"] < scores["clean"]
    assert report.repaired_cells > 0 and report.structure_repairs > 0

    if _enforcing():
        assert fidelity["sanitized"] > fidelity["perturbed"], (
            f"{name}: sanitization must move predictions back toward "
            f"their clean-table values ({fidelity['perturbed']:.1f} -> "
            f"{fidelity['sanitized']:.1f})"
        )
        assert scores["sanitized"] >= scores["perturbed"] - METRIC_FLOOR, (
            f"{name}: sanitized {metric} {scores['sanitized']:.1f} fell "
            f"more than {METRIC_FLOOR} below perturbed "
            f"{scores['perturbed']:.1f}"
        )


def test_mean_metric_recovery():
    assert len(RESULTS) == len(BENCHMARKS), "per-benchmark runs incomplete"
    perturbed = [r["scores"]["perturbed"] for r in RESULTS.values()]
    sanitized = [r["scores"]["sanitized"] for r in RESULTS.values()]
    recovery = sum(sanitized) / len(sanitized) - sum(perturbed) / len(
        perturbed
    )
    RESULTS["_aggregate"] = {"mean_metric_recovery": round(recovery, 2)}
    print(f"\nmean metric recovery: {recovery:+.1f} points")
    if _enforcing():
        assert recovery >= MEAN_RECOVERY, (
            f"sanitization must recover >= {MEAN_RECOVERY} metric points "
            f"on average across benchmarks; got {recovery:+.1f}"
        )


def test_write_bench_json(scale):
    """Write BENCH_robustness.json (runs last in the module)."""
    assert "_aggregate" in RESULTS, "aggregate gate did not record results"
    report = {
        "setup": {
            "scale": scale.name,
            "profile": "heavy",
            "training": "clean UCTR synthetic (variant 'full')",
            "gates": {
                "fidelity": "sanitized > perturbed, every benchmark",
                "metric_floor": METRIC_FLOOR,
                "mean_recovery": MEAN_RECOVERY,
            },
        },
        "results": dict(RESULTS),
    }
    BENCH_PATH.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {BENCH_PATH}")
