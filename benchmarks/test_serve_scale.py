"""Bench: replica-pool scaling — RPS at 1/2/4 replicas under open load.

What this measures
------------------
Whether the serving *infrastructure* — deterministic routing, pipe
IPC, per-replica engines, pool accounting — scales request throughput
with replica count.  Every configuration is offered the **same**
fixed-rate open-loop workload (coordinated-omission-free: each latency
is measured from the request's scheduled arrival, so queueing delay on
a saturated server lands in the tail instead of stretching the
schedule).  An under-provisioned pool saturates at its capacity and
sheds the rest as typed 429s; a provisioned one sustains the offered
rate with bounded p99.

Why fixed-service stub models
-----------------------------
The served models are :mod:`repro.serve.stub` fixed-service-time
stand-ins: each request costs exactly ``service_s`` of wall-clock
inside its replica (a GIL-releasing, CPU-free sleep — the regime of a
model bound to an exclusive fixed-latency accelerator).  Real
CPU-bound models cannot scale past the host's core count, so on a
small CI runner they would measure the machine, not the pool; the
stubs make per-replica capacity exact (``1 / mean_service``) and
host-independent, which is precisely what a scaling benchmark of the
*serving layer* needs.  The JSON records the host core count so the
numbers are never mistaken for model-compute scaling.

Capacity arithmetic (workers=1, cache disabled, per-sample service):

* qa 20 ms, verify 40 ms, mixed workload ≈ 30 ms mean → ~33 rps per
  replica; 4 replicas ≈ 133 rps.
* offered rate 100 rps ≈ 75% of 4-replica capacity: 1 replica is 3×
  oversubscribed (throughput pins at ~33 rps), 4 replicas cruise.

Acceptance (this PR's criterion, always asserted): mixed-workload
goodput at 4 replicas >= 2.5× the 1-replica goodput under the same
offered load, with p99 reported and bounded.

Results land in ``benchmarks/BENCH_serve_scale.json``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.serve import (
    EngineConfig,
    ModelRegistry,
    PoolConfig,
    ServeClient,
    build_workload,
    pool_from_registry,
    run_load,
    run_load_open,
)
from repro.serve.stub import FixedServiceQA, FixedServiceVerifier
from repro.tables import Paragraph, Table, TableContext

_HERE = Path(__file__).resolve().parent
BENCH_PATH = _HERE / "BENCH_serve_scale.json"

#: per-sample service time inside a replica, seconds.
SERVICE_QA = 0.020
SERVICE_VERIFY = 0.040

#: open-loop offered rate (requests/second) — identical for every
#: replica count; ~75% of 4-replica capacity, 3× 1-replica capacity.
OFFERED_RPS = 100.0

#: requests per open-loop run (run length = N / rate = 4 s).
N_OPEN = 400

#: generator-side concurrency bound; sized well above
#: rate × max expected latency so the generator never becomes the queue.
OPEN_CLIENTS = 48

#: requests per closed-loop run, scaled by replica count so each run
#: takes a comparable few seconds.
N_CLOSED_PER_REPLICA = 60

REPLICA_COUNTS = (1, 2, 4)

#: results accumulated across tests, written once at the end.
RESULTS: dict[str, object] = {}


def _bench_context() -> TableContext:
    table = Table.from_rows(
        header=["player", "team", "points", "rebounds", "assists"],
        raw_rows=[
            ["john smith", "hawks", "31", "7", "4"],
            ["mike jones", "bulls", "22", "11", "9"],
            ["alan reed", "hawks", "17", "4", "2"],
            ["bo chen", "heat", "28", "9", "6"],
            ["raj patel", "bulls", "12", "6", "11"],
            ["omar diaz", "heat", "25", "8", "3"],
        ],
        title="player statistics",
        row_name_column="player",
    )
    return TableContext(
        table=table,
        paragraphs=(
            Paragraph(text="league statistics for the season .",
                      source="context"),
        ),
        uid="ctx-serve-scale",
    )


@pytest.fixture(scope="module")
def context() -> TableContext:
    return _bench_context()


@pytest.fixture(scope="module")
def registry_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("scale-registry")
    registry = ModelRegistry(root)
    registry.save(FixedServiceQA(SERVICE_QA), "qa-stub")
    registry.save(FixedServiceVerifier(SERVICE_VERIFY), "verify-stub")
    return root


def _pool(registry_dir, replicas: int):
    return pool_from_registry(
        str(registry_dir),
        config=PoolConfig(
            replicas=replicas,
            engine=EngineConfig(
                workers=1,        # one serial "accelerator" per replica
                max_batch_size=8,
                queue_limit=32,   # saturated configs shed load as 429s
                cache_size=0,     # measure dispatch, not memoization
            ),
        ),
    )


def _measure_open(registry_dir, context, replicas: int) -> dict:
    pool = _pool(registry_dir, replicas)
    workload = build_workload([context], N_OPEN, seed=42)
    pool.start()
    try:
        report = run_load_open(
            ServeClient(pool), workload,
            rate=OFFERED_RPS, clients=OPEN_CLIENTS,
        )
        stats = pool.stats()
    finally:
        pool.stop(drain=True)
    assert report.errors == 0, report
    assert stats["reconciles"], stats
    return {
        "replicas": replicas,
        "offered_rps": OFFERED_RPS,
        "goodput_rps": round(report.rps, 1),
        "completed": report.completed,
        "rejected_429": report.rejected,
        "latency": report.latency,
    }


def _measure_closed(registry_dir, context, replicas: int) -> dict:
    pool = _pool(registry_dir, replicas)
    workload = build_workload(
        [context], N_CLOSED_PER_REPLICA * replicas, seed=43
    )
    pool.start()
    try:
        report = run_load(
            ServeClient(pool), workload, clients=4 * replicas
        )
        stats = pool.stats()
    finally:
        pool.stop(drain=True)
    assert report.errors == 0, report
    assert stats["reconciles"], stats
    return {
        "replicas": replicas,
        "rps": round(report.rps, 1),
        "completed": report.completed,
        "rejected_429": report.rejected,
        "latency": report.latency,
    }


def test_open_loop_scaling_to_four_replicas(registry_dir, context):
    """Acceptance: 4-replica goodput >= 2.5× 1-replica, bounded p99."""
    by_count = {}
    for replicas in REPLICA_COUNTS:
        result = _measure_open(registry_dir, context, replicas)
        by_count[replicas] = result
        print(
            f"\nopen loop, {replicas} replica(s): offered "
            f"{OFFERED_RPS:.0f} rps -> goodput {result['goodput_rps']:.0f} "
            f"rps, p99 {result['latency']['overall']['p99_ms']:.0f} ms, "
            f"{result['rejected_429']} shed as 429"
        )
    RESULTS["open_loop"] = by_count
    ratio = by_count[4]["goodput_rps"] / max(1e-9, by_count[1]["goodput_rps"])
    RESULTS["speedup_4v1"] = round(ratio, 2)
    print(f"4-replica vs 1-replica goodput: {ratio:.2f}x")
    assert ratio >= 2.5, (
        f"4 replicas must sustain >= 2.5x the goodput of 1 under the "
        f"same offered load; got {ratio:.2f}x "
        f"({by_count[1]['goodput_rps']:.0f} -> "
        f"{by_count[4]['goodput_rps']:.0f} rps)"
    )
    # the provisioned pool keeps the tail bounded (75% utilization);
    # 2 s is an order of magnitude above the ~0.2 s queueing expected
    # and an order below the saturated 1-replica tail.
    p99_4 = by_count[4]["latency"]["overall"]["p99_ms"]
    assert p99_4 < 2000.0, f"4-replica p99 unbounded: {p99_4:.0f} ms"
    # monotone scaling: more replicas never serve less
    assert by_count[2]["goodput_rps"] >= by_count[1]["goodput_rps"]
    assert by_count[4]["goodput_rps"] >= by_count[2]["goodput_rps"]


def test_closed_loop_capacity_reported(registry_dir, context):
    """Closed-loop sustainable capacity per replica count (recorded)."""
    by_count = {}
    for replicas in REPLICA_COUNTS:
        result = _measure_closed(registry_dir, context, replicas)
        by_count[replicas] = result
        print(
            f"\nclosed loop, {replicas} replica(s): "
            f"{result['rps']:.0f} rps sustained"
        )
    RESULTS["closed_loop"] = by_count
    # closed loop tracks capacity: strictly more replicas, more rps
    assert by_count[4]["rps"] > by_count[1]["rps"]


def test_write_bench_json():
    """Write BENCH_serve_scale.json (runs last in the module)."""
    assert "open_loop" in RESULTS, "scaling benchmark did not record"
    report = {
        "methodology": {
            "note": (
                "Fixed-service-time stub models (GIL-releasing sleep "
                "per sample) isolate serving-layer scaling — routing, "
                "IPC, per-replica engines — from host core count; "
                "per-replica capacity is exactly 1/mean_service. "
                "See benchmarks/test_serve_scale.py docstring."
            ),
            "service_ms": {
                "qa": SERVICE_QA * 1e3,
                "verify": SERVICE_VERIFY * 1e3,
            },
            "open_loop": {
                "offered_rps": OFFERED_RPS,
                "requests": N_OPEN,
                "clients": OPEN_CLIENTS,
                "latency_reference": "scheduled arrival (CO-free)",
            },
            "engine_per_replica": {
                "workers": 1, "queue_limit": 32, "cache": "disabled",
            },
            "host_cpu_count": os.cpu_count(),
        },
        "results": dict(RESULTS),
    }
    BENCH_PATH.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {BENCH_PATH}")
