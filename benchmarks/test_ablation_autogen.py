"""Bench: template pool vs auto-generated programs (paper future work).

Expected shape: the curated pool is a strong baseline; adding
auto-generated templates must not break it (the union stays within a
few points).  Auto-only may trail — its claims can exceed the evidence
signals the substitute verifier computes (see EXPERIMENTS.md).
"""

from conftest import run_once

from repro.experiments import ablation_autogen


def test_ablation_autogen(benchmark, scale):
    result = run_once(benchmark, ablation_autogen.run, scale)
    print("\n" + result.render())
    rows = {row["Templates"]: row for row in result.rows}
    assert "template pool" in rows
    assert "auto-generated" in rows

    pool_acc = rows["template pool"]["Dev Accuracy"]
    auto_acc = rows["auto-generated"]["Dev Accuracy"]
    union_acc = rows["pool + auto"]["Dev Accuracy"]
    assert rows["auto-generated"]["Pool size"] > rows["template pool"]["Pool size"]

    # auto-generated programs alone are a viable pool: close to the
    # curated one and far above chance (~50 on 2-way FEVEROUS)
    assert auto_acc > 55
    assert auto_acc >= pool_acc - 12
    # the union stays usable (mild dilution is the documented finding)
    assert union_acc >= min(pool_acc, auto_acc) - 8
