"""Bench: regenerate Table VIII (ablations on TAT-QA dev).

Paper shape: single-source single-program settings (A1/A2) are weak;
combining sources helps (A3); arithmetic programs dominate SQL on
TAT-QA (A4 > A3 on the Table column); both program types together (A5)
beat either alone; the full configuration (A6) is the best overall.
"""

from conftest import f1, run_once

from repro.experiments import table8_ablation


def test_table8_ablation(benchmark, scale):
    result = run_once(benchmark, table8_ablation.run, scale)
    print("\n" + result.render())
    rows = {row["Setting"]: row for row in result.rows}
    assert set(rows) == {"A1", "A2", "A3", "A4", "A5", "A6"}

    total = {name: f1(row["Total"]) for name, row in rows.items()}
    table_col = {name: f1(row["Table"]) for name, row in rows.items()}

    # both program types beat SQL alone (paper: A5 40.5 vs A3 23.6)
    assert total["A5"] > total["A3"]
    # arithmetic carries the Table column (paper: A4 31.7 vs A3 8.4)
    assert table_col["A4"] > table_col["A3"]
    # the full configuration is at least on par with the best ablation
    assert total["A6"] >= max(total["A1"], total["A2"], total["A3"],
                              total["A4"]) - 1
    assert total["A6"] >= total["A5"] - 4  # paper: 42.4 vs 40.5
    # single-source settings trail the final configuration
    assert total["A6"] > total["A1"]
    assert total["A6"] > total["A2"]
