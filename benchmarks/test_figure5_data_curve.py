"""Bench: regenerate Figure 5 (synthetic vs labeled data on TAT-QA).

Paper shape: the synthetic-pretrained curve starts high with zero
labels (the unsupervised point), dominates the labels-only curve at
small budgets, and the labels-only curve catches up as labels grow.
"""

from conftest import run_once

from repro.experiments import figure5_data_curve


def test_figure5_data_curve(benchmark, scale):
    result = run_once(benchmark, figure5_data_curve.run, scale)
    print("\n" + result.render())
    rows = sorted(result.rows, key=lambda row: row["Labeled Samples"])
    assert rows[0]["Labeled Samples"] == 0
    zero_label_pretrained = rows[0]["UCTR + labels (F1)"]
    assert zero_label_pretrained > 20  # synthetic alone is already useful

    # at the smallest non-zero budget, pre-training dominates
    first = rows[1]
    assert first["UCTR + labels (F1)"] >= first["Labels only (F1)"] - 3

    # labels-only improves with budget overall
    labels_only = [row["Labels only (F1)"] for row in rows]
    assert labels_only[-1] >= labels_only[1] - 3

    # the pretrained curve never collapses below its zero-label start
    for row in rows[1:]:
        assert row["UCTR + labels (F1)"] >= zero_label_pretrained - 12
