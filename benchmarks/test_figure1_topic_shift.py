"""Bench: regenerate Figure 1 (topic-shift degradation).

Paper shape (Chemmengath et al.): models evaluated on topics unseen in
training lose accuracy relative to in-topic training.  We assert the
*average* drop across held-out topics is non-negative — individual
topics are noisy at benchmark scale.
"""

from conftest import run_once

from repro.experiments import figure1_topic_shift


def test_figure1_topic_shift(benchmark, scale):
    result = run_once(benchmark, figure1_topic_shift.run, scale)
    print("\n" + result.render())
    assert result.rows, "no topic had enough dev questions"
    drops = [row["Drop"] for row in result.rows]
    mean_drop = sum(drops) / len(drops)
    assert mean_drop >= -3.0  # unseen never clearly better on average
    # the seen-topic model must be functional on every topic
    for row in result.rows:
        assert row["Seen-topic Acc"] > 10
