"""Bench: regenerate Table II (dataset statistics)."""

from conftest import run_once

from repro.experiments import table2_statistics


def test_table2_statistics(benchmark, scale):
    result = run_once(benchmark, table2_statistics.run, scale)
    print("\n" + result.render())
    names = [row["Dataset"] for row in result.rows]
    assert names == ["feverous", "tatqa", "wikisql", "semtabfacts"]
    by_name = {row["Dataset"]: row for row in result.rows}
    # data-rich vs low-resource contrast (drives Table VII's shape)
    assert by_name["feverous"]["Tables"] > by_name["semtabfacts"]["Tables"]
    assert by_name["wikisql"]["Tables"] > by_name["tatqa"]["Tables"]
    # every benchmark produced samples
    for row in result.rows:
        assert row["Total Samples"] > 0
