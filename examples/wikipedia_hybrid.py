"""Joint table-text reasoning on Wikipedia-style evidence (FEVEROUS).

Run with ``python examples/wikipedia_hybrid.py``.

Demonstrates the two operators that make UCTR handle *heterogeneous*
evidence: Table-To-Text splits a table into a sub-table plus a
generated sentence; Text-To-Table pulls a record out of the running
text and expands the table before program execution.
"""

from repro import UCTR, UCTRConfig
from repro.datasets import make_feverous
from repro.datasets.feverous import FeverousConfig
from repro.operators import TableToText, TextToTable
from repro.pipelines.samples import EvidenceType
from repro.rng import make_rng
from repro.tables.serialize import linearize_table


def main() -> None:
    bench = make_feverous(
        FeverousConfig(train_contexts=20, dev_contexts=8, test_contexts=8)
    )
    context = next(c for c in bench.train.contexts if c.has_text)
    print("original table:")
    print(" ", linearize_table(context.table, max_rows=3), "...")
    print("surrounding text:")
    print(" ", context.text[:140], "...")

    # -- Table-To-Text: split one row into a sentence -----------------------
    rng = make_rng(1)
    splitter = TableToText()
    highlighted = frozenset(
        {(0, context.table.column_names[1]), (1, context.table.column_names[1])}
    )
    split = splitter.split(context.table, highlighted, rng)
    print("\nTable-To-Text moved row", split.row_index, "into text:")
    print(" ", split.sentence)
    print(f"  sub-table now has {split.sub_table.n_rows} rows "
          f"(was {context.table.n_rows})")

    # -- Text-To-Table: integrate a record from the text ---------------------
    expander = TextToTable()
    expansion = expander.expand(context)
    print(f"\nText-To-Table added row {expansion.new_row_index} "
          f"({expansion.row_name!r}) from:")
    print(" ", expansion.source_sentence)

    # -- full pipeline: joint table-text claims -------------------------------
    framework = UCTR(
        UCTRConfig(program_kinds=("logic",), samples_per_context=12, seed=21)
    )
    framework.fit(list(bench.train.contexts))
    samples = framework.generate([context])
    joint = [
        s for s in samples if s.evidence_type is EvidenceType.TABLE_TEXT
    ]
    print(f"\n{len(joint)} joint table-text claims generated, e.g.:")
    for sample in joint[:3]:
        print(f"  [{sample.label.value:>9}] {sample.sentence}")
        print(f"{'':13}via {sample.provenance['pipeline']} pipeline")


if __name__ == "__main__":
    main()
