"""Scientific fact checking without labels: the SEM-TAB-FACTS scenario.

Run with ``python examples/scientific_fact_checking.py``.

Result tables from scientific articles need claim verification, but the
domain is tiny and specialized.  UCTR generates complex synthetic claims
(superlatives, counts, aggregations...) directly from the unlabeled
tables and trains a 3-way verifier (Supported / Refuted / Unknown).
"""

from repro import UCTR, UCTRConfig
from repro.datasets import make_semtabfacts
from repro.datasets.semtabfacts import SemTabFactsConfig
from repro.models.verifier import VerifierConfig
from repro.pipelines.samples import ReasoningSample, TaskType
from repro.sampling.labeler import ClaimLabel
from repro.train import TrainingPlan, evaluate_verifier, train_verifier


def main() -> None:
    bench = make_semtabfacts(
        SemTabFactsConfig(train_contexts=30, dev_contexts=15, test_contexts=10)
    )
    contexts = list(bench.train.contexts)
    print(f"{len(contexts)} unlabeled scientific tables")

    framework = UCTR(
        UCTRConfig(program_kinds=("logic",), samples_per_context=16, seed=9)
    )
    framework.fit(contexts)
    synthetic = framework.generate(contexts)
    print(f"synthesized {len(synthetic)} claims, e.g.:")
    for sample in synthetic[:4]:
        print(f"  [{sample.label.value:>9}] {sample.sentence}")

    verifier = train_verifier(
        TrainingPlan.unsupervised(synthetic), VerifierConfig(three_way=True)
    )
    dev = [s for s in bench.dev.gold if s.label is not None]
    scores = evaluate_verifier(verifier, dev)
    print(f"\nunsupervised verifier on {len(dev)} gold claims: "
          f"accuracy {scores.accuracy:.1f}, micro-F1 {scores.f1:.1f}")

    # Verify a hand-written claim against the first table.
    context = bench.dev.contexts[0]
    column = context.table.numeric_column_names()[0]
    name = context.table.row_name(0)
    value = context.table.cell(0, column).raw
    claim = ReasoningSample(
        uid="handwritten",
        task=TaskType.FACT_VERIFICATION,
        context=context,
        sentence=f"the {column} of {name} is {value}",
        label=ClaimLabel.SUPPORTED,
    )
    verdict = verifier.predict([claim])[0]
    print(f"\nhand-written claim: {claim.sentence!r}")
    print(f"verdict: {verdict.value}")


if __name__ == "__main__":
    main()
