"""Financial QA without labels: the TAT-QA scenario from the paper's intro.

Run with ``python examples/financial_qa.py``.

A model must answer numeric questions over financial reports (tables +
narrative text), but no annotated questions exist.  UCTR generates
synthetic arithmetic/SQL questions from the unlabeled reports, a
TAGOP-style QA model trains on them, and we measure it against the gold
development questions it never saw.
"""

from repro import UCTR, UCTRConfig
from repro.datasets import make_tatqa
from repro.datasets.tatqa import TatQAConfig
from repro.train import TrainingPlan, evaluate_qa, train_qa


def main() -> None:
    bench = make_tatqa(
        TatQAConfig(train_contexts=40, dev_contexts=20, test_contexts=10)
    )
    contexts = list(bench.train.contexts)
    print(f"{len(contexts)} unlabeled financial reports "
          f"({bench.domain} domain)")

    framework = UCTR(
        UCTRConfig(program_kinds=("sql", "arith"), samples_per_context=16,
                   seed=3)
    )
    framework.fit(contexts)
    synthetic = framework.generate(contexts)
    print(f"synthesized {len(synthetic)} questions, e.g.:")
    for sample in synthetic[:4]:
        print(f"  Q: {sample.sentence}")
        print(f"  A: {list(sample.answer)}   "
              f"({sample.evidence_type.value} evidence)")

    model = train_qa(TrainingPlan.unsupervised(synthetic))
    dev = list(bench.dev.gold)
    scores = evaluate_qa(model, dev)
    print(f"\nunsupervised model on {len(dev)} gold dev questions: "
          f"EM {scores.em:.1f} / F1 {scores.f1:.1f}")

    question = dev[0]
    predicted = model.predict(question)
    print("\nexample gold question:")
    print(f"  Q: {question.sentence}")
    print(f"  predicted: {list(predicted)}; gold: {list(question.answer)}")


if __name__ == "__main__":
    main()
