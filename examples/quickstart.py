"""Quickstart: synthesize complex reasoning data from one unlabeled table.

Run with ``python examples/quickstart.py``.

This walks the full UCTR pipeline on a single table: program templates
are sampled and executed, the NL-Generator turns programs into natural
language, and the Table-To-Text operator builds joint table-text
samples — all without a single human label.
"""

from repro import UCTR, UCTRConfig, Table, TableContext


def main() -> None:
    table = Table.from_rows(
        header=["city", "country", "population", "area"],
        raw_rows=[
            ["springfield", "atlantia", "812", "340"],
            ["riverton", "borduria", "432", "210"],
            ["lakeside", "atlantia", "965", "520"],
            ["fairview", "carpathia", "154", "90"],
            ["greenville", "borduria", "607", "260"],
        ],
        title="cities overview",
        row_name_column="city",
    )
    context = TableContext(
        table=table,
        uid="quickstart-0",
    ).add_paragraph(
        "For oxford , the country is atlantia and the population is 377 "
        "and the area is 150 .",
        source="context",
    )

    framework = UCTR(
        UCTRConfig(
            program_kinds=("sql", "logic", "arith"),
            samples_per_context=12,
            seed=7,
        )
    )
    framework.fit([context])
    samples = framework.generate([context])

    print(f"generated {len(samples)} synthetic reasoning samples\n")
    for sample in samples:
        target = (
            f"label={sample.label.value}"
            if sample.label is not None
            else f"answer={list(sample.answer)}"
        )
        print(f"[{sample.task.value:>12} | {sample.evidence_type.value:>10}] "
              f"{sample.sentence}")
        print(f"{'':15}{target}")
        print(f"{'':15}program: {sample.provenance['program']}")
        if sample.context.has_text:
            print(f"{'':15}text: {sample.context.text[:90]}...")
        print()


if __name__ == "__main__":
    main()
