"""Legacy setuptools shim.

Enables ``pip install -e . --no-build-isolation`` on environments whose
setuptools predates PEP 660 editable wheels (no ``wheel`` package
available offline).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
